"""Tests for the LP toolkit (reduced- and ambient-space helpers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EmptyRegionError
from repro.geometry import lp, simplex
from repro.geometry.hyperplane import preference_halfspace


def square_constraints() -> tuple[np.ndarray, np.ndarray]:
    """The unit square [0, 1]^2 as A x <= b."""
    a = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
    b = np.array([1.0, 0.0, 1.0, 0.0])
    return a, b


class TestSolve:
    def test_minimises(self):
        a, b = square_constraints()
        result = lp.solve(np.array([1.0, 1.0]), a_ub=a, b_ub=b)
        assert result.value == pytest.approx(0.0)

    def test_maximise_wrapper(self):
        a, b = square_constraints()
        result = lp.maximize(np.array([1.0, 1.0]), a_ub=a, b_ub=b)
        assert result.value == pytest.approx(2.0)

    def test_variables_free_by_default(self):
        # min x s.t. x >= -5 should reach -5, not 0.
        result = lp.solve(
            np.array([1.0]), a_ub=np.array([[-1.0]]), b_ub=np.array([5.0])
        )
        assert result.value == pytest.approx(-5.0)

    def test_infeasible_raises(self):
        a = np.array([[1.0], [-1.0]])
        b = np.array([-1.0, -1.0])  # x <= -1 and x >= 1
        with pytest.raises(lp.InfeasibleLP):
            lp.solve(np.array([1.0]), a_ub=a, b_ub=b)

    def test_unbounded_raises(self):
        with pytest.raises(lp.UnboundedLP):
            lp.solve(np.array([-1.0]), a_ub=np.array([[-1.0]]), b_ub=np.array([0.0]))


class TestChebyshev:
    def test_square_center(self):
        a, b = square_constraints()
        center, radius = lp.chebyshev_center(a, b)
        np.testing.assert_allclose(center, [0.5, 0.5], atol=1e-8)
        assert radius == pytest.approx(0.5)

    def test_empty_raises(self):
        a = np.array([[1.0, 0.0], [-1.0, 0.0]])
        b = np.array([-1.0, -1.0])
        with pytest.raises(lp.InfeasibleLP):
            lp.chebyshev_center(a, b)

    def test_flat_polytope_zero_radius(self):
        # x_1 = 0.5 exactly.
        a = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        b = np.array([0.5, -0.5, 1.0, 0.0])
        _, radius = lp.chebyshev_center(a, b)
        assert radius == pytest.approx(0.0, abs=1e-9)


class TestSupportAndRedundancy:
    def test_support_value(self):
        a, b = square_constraints()
        assert lp.support_value(a, b, np.array([1.0, -1.0])) == pytest.approx(1.0)

    def test_is_feasible(self):
        a, b = square_constraints()
        assert lp.is_feasible(a, b)

    def test_redundant_constraint_detected(self):
        a, b = square_constraints()
        a2 = np.vstack([a, [1.0, 0.0]])
        b2 = np.append(b, 2.0)  # x <= 2 is implied by x <= 1
        assert lp.constraint_is_redundant(a2, b2, index=4)

    def test_necessary_constraint_kept(self):
        a, b = square_constraints()
        assert not lp.constraint_is_redundant(a, b, index=0)


class TestAmbientHelpers:
    def test_feasible_empty_halfspace_list(self):
        assert lp.ambient_is_feasible([], 3)

    def test_infeasible_contradiction(self):
        h = preference_halfspace(np.array([0.9, 0.1]), np.array([0.1, 0.9]))
        # h and its flip leave only the boundary; adding a shifted variant
        # that excludes the boundary empties the region.
        shifted = preference_halfspace(
            np.array([0.95, 0.1]), np.array([0.1, 0.9])
        )
        assert lp.ambient_is_feasible([h, h.flipped()], 2)  # boundary line
        # A genuinely empty system:
        strict_a = preference_halfspace(np.array([1.0, 0.2]), np.array([0.0, 0.9]))
        strict_b = preference_halfspace(np.array([0.0, 0.9]), np.array([1.0, 0.0]))
        del shifted
        feasible = lp.ambient_is_feasible([strict_a, strict_b], 2)
        # Verify against brute force over a dense simplex grid.
        grid = np.linspace(0, 1, 2001)
        us = np.column_stack([grid, 1 - grid])
        ok = np.all(us @ np.array([h.normal for h in (strict_a, strict_b)]).T >= -1e-12, axis=1)
        assert feasible == bool(ok.any())

    def test_bounds_of_full_simplex(self):
        e_min, e_max = lp.ambient_bounds([], 3)
        np.testing.assert_allclose(e_min, np.zeros(3), atol=1e-9)
        np.testing.assert_allclose(e_max, np.ones(3), atol=1e-9)

    def test_bounds_shrink_with_halfspace(self):
        h = preference_halfspace(np.array([1.0, 0.01]), np.array([0.01, 1.0]))
        e_min, e_max = lp.ambient_bounds([h], 2)
        # Prefers attribute 1: u_1 >= u_2 roughly, so u_1 >= ~0.5.
        assert e_min[0] >= 0.45
        assert e_max[1] <= 0.55

    def test_inner_sphere_of_simplex(self):
        center, radius = lp.ambient_inner_sphere([], 3)
        assert simplex.on_simplex(center, tol=1e-6)
        assert radius > 0.0
        # Centre of the 3-simplex inscribed sphere is the centroid.
        np.testing.assert_allclose(center, np.full(3, 1 / 3), atol=1e-6)

    def test_inner_sphere_respects_halfspaces(self):
        h = preference_halfspace(np.array([1.0, 0.01]), np.array([0.01, 1.0]))
        center, radius = lp.ambient_inner_sphere([h], 2)
        assert float(center @ h.normal) >= radius * 0.9

    def test_split_margin_signs(self):
        # Empty H: the range is the whole simplex; both directions reachable.
        w = np.array([1.0, -1.0])
        assert lp.ambient_split_margin([], 2, w) > 0
        assert lp.ambient_split_margin([], 2, -w) > 0

    def test_split_margin_blocked_direction(self):
        h = preference_halfspace(np.array([1.0, 0.01]), np.array([0.01, 1.0]))
        # R now requires u . h.normal >= 0; the opposite direction's max is ~0.
        margin = lp.ambient_split_margin([h], 2, -h.normal)
        assert margin <= 1e-9

    def test_bounds_empty_region_raises(self):
        h = preference_halfspace(np.array([1.0, 0.2]), np.array([0.0, 0.9]))
        g = preference_halfspace(np.array([0.0, 0.9]), np.array([1.0, 0.0]))
        if not lp.ambient_is_feasible([h, g], 2):
            with pytest.raises(EmptyRegionError):
                lp.ambient_bounds([h, g], 2)


class TestAmbientHighDimensions:
    """AA's LP machinery must stay healthy at the paper's d = 20+."""

    def test_inner_sphere_d20(self):
        center, radius = lp.ambient_inner_sphere([], 20)
        assert radius > 0
        assert abs(center.sum() - 1.0) < 1e-6

    def test_bounds_d20_unit_box(self):
        e_min, e_max = lp.ambient_bounds([], 20)
        np.testing.assert_allclose(e_min, np.zeros(20), atol=1e-8)
        np.testing.assert_allclose(e_max, np.ones(20), atol=1e-8)

    def test_split_margin_d20(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=20)
        assert lp.ambient_split_margin([], 20, w) >= -1e-9

    def test_constraints_accumulate_d20(self):
        rng = np.random.default_rng(1)
        spaces = []
        for _ in range(10):
            a, b = rng.uniform(0.01, 1.0, size=(2, 20))
            spaces.append(preference_halfspace(a, b))
            if not lp.ambient_is_feasible(spaces, 20):
                spaces.pop()
        _, radius = lp.ambient_inner_sphere(spaces, 20)
        assert radius >= 0


class TestLPCache:
    """Memoisation of solve() through an installed LPCache."""

    def test_identical_solve_is_cached(self):
        a, b = square_constraints()
        c = np.array([1.0, 1.0])
        cache = lp.LPCache()
        with lp.use_cache(cache):
            first = lp.solve(c, a_ub=a, b_ub=b)
            second = lp.solve(c, a_ub=a, b_ub=b)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.solves == 2
        assert cache.hit_rate == pytest.approx(0.5)
        assert len(cache) == 1
        assert second.value == first.value
        np.testing.assert_array_equal(second.x, first.x)

    def test_cached_result_is_a_copy(self):
        a, b = square_constraints()
        c = np.array([1.0, 1.0])
        cache = lp.LPCache()
        with lp.use_cache(cache):
            first = lp.solve(c, a_ub=a, b_ub=b)
            first.x[:] = 99.0  # a caller scribbling on its result
            second = lp.solve(c, a_ub=a, b_ub=b)
        assert not np.array_equal(second.x, first.x)

    def test_different_systems_miss(self):
        a, b = square_constraints()
        cache = lp.LPCache()
        with lp.use_cache(cache):
            lp.solve(np.array([1.0, 1.0]), a_ub=a, b_ub=b)
            lp.solve(np.array([1.0, 2.0]), a_ub=a, b_ub=b)
        assert cache.hits == 0
        assert cache.misses == 2

    def test_failures_are_cached(self):
        a = np.array([[1.0], [-1.0]])
        b = np.array([-1.0, -1.0])  # infeasible: x <= -1 and x >= 1
        cache = lp.LPCache()
        with lp.use_cache(cache):
            with pytest.raises(lp.InfeasibleLP):
                lp.solve(np.array([1.0]), a_ub=a, b_ub=b)
            with pytest.raises(lp.InfeasibleLP):
                lp.solve(np.array([1.0]), a_ub=a, b_ub=b)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_no_cache_without_context(self):
        a, b = square_constraints()
        cache = lp.LPCache()
        lp.solve(np.array([1.0, 1.0]), a_ub=a, b_ub=b)
        assert cache.solves == 0
        assert lp.active_cache() is None

    def test_nesting_restores_previous_cache(self):
        outer, inner = lp.LPCache(), lp.LPCache()
        with lp.use_cache(outer):
            with lp.use_cache(inner):
                assert lp.active_cache() is inner
            assert lp.active_cache() is outer
        assert lp.active_cache() is None

    def test_key_distinguishes_bounds(self):
        c = np.array([1.0])
        key_free = lp.constraint_system_key(c, None, None, None, None, None)
        key_box = lp.constraint_system_key(
            c, None, None, None, None, [(0.0, 1.0)]
        )
        assert key_free != key_box

    def test_eviction_caps_entries(self):
        a, b = square_constraints()
        cache = lp.LPCache(max_entries=2)
        with lp.use_cache(cache):
            for k in range(4):
                lp.solve(np.array([1.0, float(k)]), a_ub=a, b_ub=b)
        assert len(cache) == 2
        assert cache.misses == 4

    def test_eviction_is_lru_not_fifo(self):
        # A hit refreshes recency: after inserting A and B, touching A
        # and inserting C must evict B (the least recently *used*), not
        # A (the oldest insertion).  FIFO eviction would throw away the
        # hot simplex-startup entries every fresh session replays.
        a, b = square_constraints()
        c_a = np.array([1.0, 0.0])
        c_b = np.array([0.0, 1.0])
        c_c = np.array([1.0, 1.0])
        cache = lp.LPCache(max_entries=2)
        with lp.use_cache(cache):
            lp.solve(c_a, a_ub=a, b_ub=b)  # insert A
            lp.solve(c_b, a_ub=a, b_ub=b)  # insert B
            lp.solve(c_a, a_ub=a, b_ub=b)  # hit A -> A most recent
            lp.solve(c_c, a_ub=a, b_ub=b)  # insert C -> evicts B, keeps A
            assert cache.hits == 1
            lp.solve(c_a, a_ub=a, b_ub=b)  # still resident
            assert cache.hits == 2
            lp.solve(c_b, a_ub=a, b_ub=b)  # evicted -> miss
        assert cache.hits == 2
        assert cache.misses == 4
        assert len(cache) == 2

    def test_eviction_order_pinned(self):
        # The same scenario observed through the store itself.
        a, b = square_constraints()
        systems = {
            name: np.array(coefficients)
            for name, coefficients in (
                ("A", [1.0, 0.0]), ("B", [0.0, 1.0]), ("C", [1.0, 1.0]),
            )
        }
        keys = {
            name: lp.constraint_system_key(c, a, b, None, None, lp._FREE)
            for name, c in systems.items()
        }
        cache = lp.LPCache(max_entries=2)
        with lp.use_cache(cache):
            lp.solve(systems["A"], a_ub=a, b_ub=b)
            lp.solve(systems["B"], a_ub=a, b_ub=b)
            lp.solve(systems["A"], a_ub=a, b_ub=b)
            lp.solve(systems["C"], a_ub=a, b_ub=b)
        assert set(cache._store) == {keys["A"], keys["C"]}

    def test_record_existing_key_refreshes_recency(self):
        cache = lp.LPCache(max_entries=2)
        result = lp.LPResult(x=np.zeros(1), value=0.0)
        cache.store(b"k1", result)
        cache.store(b"k2", result)
        cache.store(b"k1", result)  # rewrite -> k1 most recent
        cache.store(b"k3", result)  # evicts k2
        assert set(cache._store) == {b"k1", b"k3"}


class TestCacheContextIsolation:
    """use_cache installation is context-local, not process-global."""

    def test_threads_do_not_stomp_each_other(self):
        import threading

        a, b = square_constraints()
        caches = [lp.LPCache(), lp.LPCache()]
        barrier = threading.Barrier(2)
        errors: list[Exception] = []

        def worker(i: int) -> None:
            try:
                with lp.use_cache(caches[i]):
                    barrier.wait(timeout=10)
                    # Both threads are inside use_cache now; each must
                    # still see only its own cache.
                    assert lp.active_cache() is caches[i]
                    objective = np.array([1.0, float(i)])
                    lp.solve(objective, a_ub=a, b_ub=b)
                    lp.solve(objective, a_ub=a, b_ub=b)
                    barrier.wait(timeout=10)
                    assert lp.active_cache() is caches[i]
                assert lp.active_cache() is None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        for cache in caches:
            # Each thread's two identical solves landed in its own cache:
            # one miss, one hit, no cross-thread contamination.
            assert cache.misses == 1
            assert cache.hits == 1
        assert lp.active_cache() is None
