"""Tests for the LP toolkit (reduced- and ambient-space helpers)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EmptyRegionError
from repro.geometry import lp, simplex
from repro.geometry.hyperplane import preference_halfspace


def square_constraints() -> tuple[np.ndarray, np.ndarray]:
    """The unit square [0, 1]^2 as A x <= b."""
    a = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
    b = np.array([1.0, 0.0, 1.0, 0.0])
    return a, b


class TestSolve:
    def test_minimises(self):
        a, b = square_constraints()
        result = lp.solve(np.array([1.0, 1.0]), a_ub=a, b_ub=b)
        assert result.value == pytest.approx(0.0)

    def test_maximise_wrapper(self):
        a, b = square_constraints()
        result = lp.maximize(np.array([1.0, 1.0]), a_ub=a, b_ub=b)
        assert result.value == pytest.approx(2.0)

    def test_variables_free_by_default(self):
        # min x s.t. x >= -5 should reach -5, not 0.
        result = lp.solve(
            np.array([1.0]), a_ub=np.array([[-1.0]]), b_ub=np.array([5.0])
        )
        assert result.value == pytest.approx(-5.0)

    def test_infeasible_raises(self):
        a = np.array([[1.0], [-1.0]])
        b = np.array([-1.0, -1.0])  # x <= -1 and x >= 1
        with pytest.raises(lp.InfeasibleLP):
            lp.solve(np.array([1.0]), a_ub=a, b_ub=b)

    def test_unbounded_raises(self):
        with pytest.raises(lp.UnboundedLP):
            lp.solve(np.array([-1.0]), a_ub=np.array([[-1.0]]), b_ub=np.array([0.0]))


class TestChebyshev:
    def test_square_center(self):
        a, b = square_constraints()
        center, radius = lp.chebyshev_center(a, b)
        np.testing.assert_allclose(center, [0.5, 0.5], atol=1e-8)
        assert radius == pytest.approx(0.5)

    def test_empty_raises(self):
        a = np.array([[1.0, 0.0], [-1.0, 0.0]])
        b = np.array([-1.0, -1.0])
        with pytest.raises(lp.InfeasibleLP):
            lp.chebyshev_center(a, b)

    def test_flat_polytope_zero_radius(self):
        # x_1 = 0.5 exactly.
        a = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        b = np.array([0.5, -0.5, 1.0, 0.0])
        _, radius = lp.chebyshev_center(a, b)
        assert radius == pytest.approx(0.0, abs=1e-9)


class TestSupportAndRedundancy:
    def test_support_value(self):
        a, b = square_constraints()
        assert lp.support_value(a, b, np.array([1.0, -1.0])) == pytest.approx(1.0)

    def test_is_feasible(self):
        a, b = square_constraints()
        assert lp.is_feasible(a, b)

    def test_redundant_constraint_detected(self):
        a, b = square_constraints()
        a2 = np.vstack([a, [1.0, 0.0]])
        b2 = np.append(b, 2.0)  # x <= 2 is implied by x <= 1
        assert lp.constraint_is_redundant(a2, b2, index=4)

    def test_necessary_constraint_kept(self):
        a, b = square_constraints()
        assert not lp.constraint_is_redundant(a, b, index=0)


class TestAmbientHelpers:
    def test_feasible_empty_halfspace_list(self):
        assert lp.ambient_is_feasible([], 3)

    def test_infeasible_contradiction(self):
        h = preference_halfspace(np.array([0.9, 0.1]), np.array([0.1, 0.9]))
        # h and its flip leave only the boundary; adding a shifted variant
        # that excludes the boundary empties the region.
        shifted = preference_halfspace(
            np.array([0.95, 0.1]), np.array([0.1, 0.9])
        )
        assert lp.ambient_is_feasible([h, h.flipped()], 2)  # boundary line
        # A genuinely empty system:
        strict_a = preference_halfspace(np.array([1.0, 0.2]), np.array([0.0, 0.9]))
        strict_b = preference_halfspace(np.array([0.0, 0.9]), np.array([1.0, 0.0]))
        del shifted
        feasible = lp.ambient_is_feasible([strict_a, strict_b], 2)
        # Verify against brute force over a dense simplex grid.
        grid = np.linspace(0, 1, 2001)
        us = np.column_stack([grid, 1 - grid])
        ok = np.all(us @ np.array([h.normal for h in (strict_a, strict_b)]).T >= -1e-12, axis=1)
        assert feasible == bool(ok.any())

    def test_bounds_of_full_simplex(self):
        e_min, e_max = lp.ambient_bounds([], 3)
        np.testing.assert_allclose(e_min, np.zeros(3), atol=1e-9)
        np.testing.assert_allclose(e_max, np.ones(3), atol=1e-9)

    def test_bounds_shrink_with_halfspace(self):
        h = preference_halfspace(np.array([1.0, 0.01]), np.array([0.01, 1.0]))
        e_min, e_max = lp.ambient_bounds([h], 2)
        # Prefers attribute 1: u_1 >= u_2 roughly, so u_1 >= ~0.5.
        assert e_min[0] >= 0.45
        assert e_max[1] <= 0.55

    def test_inner_sphere_of_simplex(self):
        center, radius = lp.ambient_inner_sphere([], 3)
        assert simplex.on_simplex(center, tol=1e-6)
        assert radius > 0.0
        # Centre of the 3-simplex inscribed sphere is the centroid.
        np.testing.assert_allclose(center, np.full(3, 1 / 3), atol=1e-6)

    def test_inner_sphere_respects_halfspaces(self):
        h = preference_halfspace(np.array([1.0, 0.01]), np.array([0.01, 1.0]))
        center, radius = lp.ambient_inner_sphere([h], 2)
        assert float(center @ h.normal) >= radius * 0.9

    def test_split_margin_signs(self):
        # Empty H: the range is the whole simplex; both directions reachable.
        w = np.array([1.0, -1.0])
        assert lp.ambient_split_margin([], 2, w) > 0
        assert lp.ambient_split_margin([], 2, -w) > 0

    def test_split_margin_blocked_direction(self):
        h = preference_halfspace(np.array([1.0, 0.01]), np.array([0.01, 1.0]))
        # R now requires u . h.normal >= 0; the opposite direction's max is ~0.
        margin = lp.ambient_split_margin([h], 2, -h.normal)
        assert margin <= 1e-9

    def test_bounds_empty_region_raises(self):
        h = preference_halfspace(np.array([1.0, 0.2]), np.array([0.0, 0.9]))
        g = preference_halfspace(np.array([0.0, 0.9]), np.array([1.0, 0.0]))
        if not lp.ambient_is_feasible([h, g], 2):
            with pytest.raises(EmptyRegionError):
                lp.ambient_bounds([h, g], 2)


class TestAmbientHighDimensions:
    """AA's LP machinery must stay healthy at the paper's d = 20+."""

    def test_inner_sphere_d20(self):
        center, radius = lp.ambient_inner_sphere([], 20)
        assert radius > 0
        assert abs(center.sum() - 1.0) < 1e-6

    def test_bounds_d20_unit_box(self):
        e_min, e_max = lp.ambient_bounds([], 20)
        np.testing.assert_allclose(e_min, np.zeros(20), atol=1e-8)
        np.testing.assert_allclose(e_max, np.ones(20), atol=1e-8)

    def test_split_margin_d20(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=20)
        assert lp.ambient_split_margin([], 20, w) >= -1e-9

    def test_constraints_accumulate_d20(self):
        rng = np.random.default_rng(1)
        spaces = []
        for _ in range(10):
            a, b = rng.uniform(0.01, 1.0, size=(2, 20))
            spaces.append(preference_halfspace(a, b))
            if not lp.ambient_is_feasible(spaces, 20):
                spaces.pop()
        _, radius = lp.ambient_inner_sphere(spaces, 20)
        assert radius >= 0


class TestLPCache:
    """Memoisation of solve() through an installed LPCache."""

    def test_identical_solve_is_cached(self):
        a, b = square_constraints()
        c = np.array([1.0, 1.0])
        cache = lp.LPCache()
        with lp.use_cache(cache):
            first = lp.solve(c, a_ub=a, b_ub=b)
            second = lp.solve(c, a_ub=a, b_ub=b)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.solves == 2
        assert cache.hit_rate == pytest.approx(0.5)
        assert len(cache) == 1
        assert second.value == first.value
        np.testing.assert_array_equal(second.x, first.x)

    def test_cached_result_is_a_copy(self):
        a, b = square_constraints()
        c = np.array([1.0, 1.0])
        cache = lp.LPCache()
        with lp.use_cache(cache):
            first = lp.solve(c, a_ub=a, b_ub=b)
            first.x[:] = 99.0  # a caller scribbling on its result
            second = lp.solve(c, a_ub=a, b_ub=b)
        assert not np.array_equal(second.x, first.x)

    def test_different_systems_miss(self):
        a, b = square_constraints()
        cache = lp.LPCache()
        with lp.use_cache(cache):
            lp.solve(np.array([1.0, 1.0]), a_ub=a, b_ub=b)
            lp.solve(np.array([1.0, 2.0]), a_ub=a, b_ub=b)
        assert cache.hits == 0
        assert cache.misses == 2

    def test_failures_are_cached(self):
        a = np.array([[1.0], [-1.0]])
        b = np.array([-1.0, -1.0])  # infeasible: x <= -1 and x >= 1
        cache = lp.LPCache()
        with lp.use_cache(cache):
            with pytest.raises(lp.InfeasibleLP):
                lp.solve(np.array([1.0]), a_ub=a, b_ub=b)
            with pytest.raises(lp.InfeasibleLP):
                lp.solve(np.array([1.0]), a_ub=a, b_ub=b)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_no_cache_without_context(self):
        a, b = square_constraints()
        cache = lp.LPCache()
        lp.solve(np.array([1.0, 1.0]), a_ub=a, b_ub=b)
        assert cache.solves == 0
        assert lp.active_cache() is None

    def test_nesting_restores_previous_cache(self):
        outer, inner = lp.LPCache(), lp.LPCache()
        with lp.use_cache(outer):
            with lp.use_cache(inner):
                assert lp.active_cache() is inner
            assert lp.active_cache() is outer
        assert lp.active_cache() is None

    def test_key_distinguishes_bounds(self):
        c = np.array([1.0])
        key_free = lp.constraint_system_key(c, None, None, None, None, None)
        key_box = lp.constraint_system_key(
            c, None, None, None, None, [(0.0, 1.0)]
        )
        assert key_free != key_box

    def test_eviction_caps_entries(self):
        a, b = square_constraints()
        cache = lp.LPCache(max_entries=2)
        with lp.use_cache(cache):
            for k in range(4):
                lp.solve(np.array([1.0, float(k)]), a_ub=a, b_ub=b)
        assert len(cache) == 2
        assert cache.misses == 4

    def test_eviction_is_lru_not_fifo(self):
        # A hit refreshes recency: after inserting A and B, touching A
        # and inserting C must evict B (the least recently *used*), not
        # A (the oldest insertion).  FIFO eviction would throw away the
        # hot simplex-startup entries every fresh session replays.
        a, b = square_constraints()
        c_a = np.array([1.0, 0.0])
        c_b = np.array([0.0, 1.0])
        c_c = np.array([1.0, 1.0])
        cache = lp.LPCache(max_entries=2)
        with lp.use_cache(cache):
            lp.solve(c_a, a_ub=a, b_ub=b)  # insert A
            lp.solve(c_b, a_ub=a, b_ub=b)  # insert B
            lp.solve(c_a, a_ub=a, b_ub=b)  # hit A -> A most recent
            lp.solve(c_c, a_ub=a, b_ub=b)  # insert C -> evicts B, keeps A
            assert cache.hits == 1
            lp.solve(c_a, a_ub=a, b_ub=b)  # still resident
            assert cache.hits == 2
            lp.solve(c_b, a_ub=a, b_ub=b)  # evicted -> miss
        assert cache.hits == 2
        assert cache.misses == 4
        assert len(cache) == 2

    def test_eviction_order_pinned(self):
        # The same scenario observed through the store itself.
        a, b = square_constraints()
        systems = {
            name: np.array(coefficients)
            for name, coefficients in (
                ("A", [1.0, 0.0]), ("B", [0.0, 1.0]), ("C", [1.0, 1.0]),
            )
        }
        keys = {
            name: lp.constraint_system_key(c, a, b, None, None, lp._FREE)
            for name, c in systems.items()
        }
        cache = lp.LPCache(max_entries=2)
        with lp.use_cache(cache):
            lp.solve(systems["A"], a_ub=a, b_ub=b)
            lp.solve(systems["B"], a_ub=a, b_ub=b)
            lp.solve(systems["A"], a_ub=a, b_ub=b)
            lp.solve(systems["C"], a_ub=a, b_ub=b)
        assert set(cache._store) == {keys["A"], keys["C"]}

    def test_record_existing_key_refreshes_recency(self):
        cache = lp.LPCache(max_entries=2)
        result = lp.LPResult(x=np.zeros(1), value=0.0)
        cache.store(b"k1", result)
        cache.store(b"k2", result)
        cache.store(b"k1", result)  # rewrite -> k1 most recent
        cache.store(b"k3", result)  # evicts k2
        assert set(cache._store) == {b"k1", b"k3"}


class TestCacheContextIsolation:
    """use_cache installation is context-local, not process-global."""

    def test_threads_do_not_stomp_each_other(self):
        import threading

        a, b = square_constraints()
        caches = [lp.LPCache(), lp.LPCache()]
        barrier = threading.Barrier(2)
        errors: list[Exception] = []

        def worker(i: int) -> None:
            try:
                with lp.use_cache(caches[i]):
                    barrier.wait(timeout=10)
                    # Both threads are inside use_cache now; each must
                    # still see only its own cache.
                    assert lp.active_cache() is caches[i]
                    objective = np.array([1.0, float(i)])
                    lp.solve(objective, a_ub=a, b_ub=b)
                    lp.solve(objective, a_ub=a, b_ub=b)
                    barrier.wait(timeout=10)
                    assert lp.active_cache() is caches[i]
                assert lp.active_cache() is None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        for cache in caches:
            # Each thread's two identical solves landed in its own cache:
            # one miss, one hit, no cross-thread contamination.
            assert cache.misses == 1
            assert cache.hits == 1
        assert lp.active_cache() is None


class TestCacheKeyCanonicalisation:
    """The key must depend on the numbers, not on how they are spelled."""

    C = np.array([1.0, 2.0])
    A = np.array([[1.0, 1.0], [-1.0, 0.5]])
    B = np.array([1.0, 0.0])

    def _key(self, bounds):
        return lp.constraint_system_key(self.C, self.A, self.B, bounds=bounds)

    def test_scalar_pair_does_not_crash(self):
        # Regression: repr-keyed bounds crashed on a shared scalar pair.
        assert isinstance(self._key((0.0, None)), bytes)

    def test_scalar_pair_equals_expanded(self):
        assert self._key((0.0, None)) == self._key([(0.0, None), (0.0, None)])

    def test_default_bounds_equal_explicit_nonnegative(self):
        # linprog semantics: bounds=None means x >= 0 for every variable.
        assert self._key(None) == self._key((0.0, None))
        assert self._key(None) == self._key([(0.0, None)] * 2)

    def test_numpy_scalars_equal_python_floats(self):
        # Regression: numpy 2.x reprs np.float64(0.0) differently from 0.0,
        # which silently split the cache by answer dtype.
        plain = self._key([(0.0, 1.0), (0.5, None)])
        numpied = self._key(
            [(np.float64(0.0), np.float64(1.0)), (np.float64(0.5), None)]
        )
        assert plain == numpied

    def test_list_vs_tuple_bounds_equal(self):
        assert self._key([(0.0, 1.0), (0.0, 1.0)]) == self._key(
            ((0.0, 1.0), (0.0, 1.0))
        )
        assert self._key([[0.0, 1.0], [0.0, 1.0]]) == self._key(
            [(0.0, 1.0), (0.0, 1.0)]
        )

    def test_contiguity_is_irrelevant(self):
        f_order = np.asfortranarray(self.A)
        assert not f_order.flags["C_CONTIGUOUS"]
        assert lp.constraint_system_key(
            self.C, self.A, self.B
        ) == lp.constraint_system_key(self.C, f_order, self.B)

    def test_different_bounds_differ(self):
        assert self._key((0.0, None)) != self._key((0.0, 1.0))
        assert self._key(None) != self._key((None, None))

    @given(
        lo=st.floats(0.0, 1.0, allow_nan=False),
        hi=st.floats(2.0, 4.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_spelling_invariance(self, lo, hi):
        variants = [
            (lo, hi),
            [lo, hi],
            (np.float64(lo), np.float64(hi)),
            [(lo, hi), (lo, hi)],
            [(np.float64(lo), hi), [lo, np.float64(hi)]],
            np.array([[lo, hi], [lo, hi]]),
        ]
        keys = {self._key(v) for v in variants}
        assert len(keys) == 1

    def test_expand_bounds_shapes(self):
        assert lp.expand_bounds(None, 3) == [(0.0, None)] * 3
        assert lp.expand_bounds((1.0, 2.0), 3) == [(1.0, 2.0)] * 3
        assert lp.expand_bounds([(None, 1.0), (0.5, None)], 2) == [
            (None, 1.0),
            (0.5, None),
        ]
        expanded = lp.expand_bounds([(np.float64(0.5), None)], 1)
        assert type(expanded[0][0]) is float


def _bounded_system(seed: int, d: int = 3) -> lp.LPSystem:
    rng = np.random.default_rng(seed)
    a = np.vstack([rng.uniform(-1.0, 1.0, size=(4, d)), np.eye(d)])
    b = np.concatenate([rng.uniform(0.5, 2.0, size=4), np.ones(d)])
    return lp.LPSystem(
        c=rng.uniform(-1.0, 1.0, size=d),
        a_ub=a,
        b_ub=b,
        a_eq=None,
        b_eq=None,
        bounds=(0.0, None),
    )


def _infeasible_system(d: int = 2) -> lp.LPSystem:
    a = np.vstack([np.eye(d), -np.eye(d)])
    b = np.concatenate([-np.ones(d), -np.ones(d)])  # x <= -1 and x >= 1
    return lp.LPSystem(
        c=np.ones(d), a_ub=a, b_ub=b, a_eq=None, b_eq=None, bounds=(None, None)
    )


def _unbounded_system(d: int = 2) -> lp.LPSystem:
    return lp.LPSystem(
        c=-np.ones(d),
        a_ub=None,
        b_ub=None,
        a_eq=None,
        b_eq=None,
        bounds=(0.0, None),
    )


class TestSolveMany:
    def test_matches_sequential_bitwise(self):
        systems = [_bounded_system(seed) for seed in range(32)]
        batched = lp.solve_many(systems)
        solo = lp.ScipyHighsBackend()
        for system, outcome in zip(systems, batched):
            assert isinstance(outcome, lp.LPResult)
            expected = solo.solve_raw(
                system.c, system.a_ub, system.b_ub,
                system.a_eq, system.b_eq, system.bounds,
            )
            # Values must be bit-equal (they are what value-consuming
            # probes read); the optimiser point too on these
            # non-degenerate systems.
            assert outcome.value == expected.value
            assert np.array_equal(outcome.x, expected.x)

    def test_mixed_batch_isolates_failures(self):
        systems = [
            _bounded_system(1),
            _infeasible_system(),
            _unbounded_system(),
            _bounded_system(2),
        ]
        outcomes = lp.solve_many(systems)
        assert isinstance(outcomes[0], lp.LPResult)
        assert isinstance(outcomes[1], lp.InfeasibleLP)
        assert isinstance(outcomes[2], (lp.UnboundedLP, lp.InfeasibleLP))
        assert isinstance(outcomes[3], lp.LPResult)
        # The healthy members must be unaffected by the poisoned stack.
        clean = lp.solve_many([systems[0], systems[3]])
        assert outcomes[0].value == clean[0].value
        assert np.array_equal(outcomes[0].x, clean[0].x)
        assert outcomes[3].value == clean[1].value
        assert np.array_equal(outcomes[3].x, clean[1].x)

    def test_all_infeasible_batch(self):
        outcomes = lp.solve_many([_infeasible_system(), _infeasible_system(3)])
        assert all(isinstance(o, lp.InfeasibleLP) for o in outcomes)

    def test_empty_batch(self):
        assert lp.solve_many([]) == []

    def test_singleton_batch(self):
        system = _bounded_system(7)
        (outcome,) = lp.solve_many([system])
        assert isinstance(outcome, lp.LPResult)

    def test_misses_are_stored_for_later_solve(self):
        cache = lp.LPCache()
        system = _bounded_system(11)
        with lp.use_cache(cache):
            (first,) = lp.solve_many([system])
            assert cache.misses == 1
            replay = lp.solve(
                system.c, a_ub=system.a_ub, b_ub=system.b_ub,
                bounds=system.bounds,
            )
            assert cache.hits == 1
        assert replay.value == first.value
        assert np.array_equal(replay.x, first.x)

    def test_hits_are_peeled_before_stacking(self):
        cache = lp.LPCache()
        primed = _bounded_system(21)
        fresh = _bounded_system(22)
        with lp.use_cache(cache):
            lp.solve_many([primed])
            solves_before = lp.active_backend().solves
            outcomes = lp.solve_many([primed, fresh])
            assert cache.hits == 1
            # Only the fresh system reached the solver.
            assert lp.active_backend().solves == solves_before + 1
        assert isinstance(outcomes[0], lp.LPResult)
        assert isinstance(outcomes[1], lp.LPResult)

    def test_cached_failures_replay_as_instances(self):
        cache = lp.LPCache()
        bad = _infeasible_system()
        with lp.use_cache(cache):
            (first,) = lp.solve_many([bad])
            (second,) = lp.solve_many([bad])
            assert cache.hits == 1
        assert isinstance(first, lp.InfeasibleLP)
        assert isinstance(second, lp.InfeasibleLP)
        assert str(second) == str(first)

    def test_cached_results_are_copies(self):
        cache = lp.LPCache()
        system = _bounded_system(31)
        with lp.use_cache(cache):
            (first,) = lp.solve_many([system])
            (second,) = lp.solve_many([system])
        assert first.x is not second.x
        first.x[0] = 123.0
        assert second.x[0] != 123.0

    @given(seeds=st.lists(st.integers(0, 10_000), min_size=1, max_size=12))
    @settings(max_examples=20, deadline=None)
    def test_property_batch_equals_sequential(self, seeds):
        systems = [_bounded_system(seed) for seed in seeds]
        batched = lp.solve_many(systems)
        solo = lp.ScipyHighsBackend()
        for system, outcome in zip(systems, batched):
            expected = solo.solve_raw(
                system.c, system.a_ub, system.b_ub,
                system.a_eq, system.b_eq, system.bounds,
            )
            assert outcome.value == expected.value

    def test_sequential_fallback_backend(self):
        # A backend without solve_many_raw still serves solve_many.
        systems = [_bounded_system(41), _infeasible_system()]
        with lp.use_backend(lp.ScipyHighsBackend()):
            outcomes = lp.solve_many(systems)
        assert isinstance(outcomes[0], lp.LPResult)
        assert isinstance(outcomes[1], lp.InfeasibleLP)


class TestSolveCounter:
    def test_count_solves_is_thread_safe(self):
        import threading

        backend = lp.ScipyHighsBackend()
        per_thread, threads = 2_000, 8

        def bump():
            for _ in range(per_thread):
                backend.count_solves()

        workers = [threading.Thread(target=bump) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert backend.solves == per_thread * threads
