"""ProcessPoolLPBackend: pooled solving is the same solver, verbatim.

The pool's contract is bit-identity with in-process batching (it runs a
plain ``BatchLPBackend`` in each solver process), plus graceful
degradation: small batches, 1-process pools and broken pools all fall
back to the inherited in-process path rather than failing the batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.lp import (
    BatchLPBackend,
    InfeasibleLP,
    LPSystem,
    ProcessPoolLPBackend,
)


def _systems(n: int, dimension: int = 3, seed: int = 0):
    rng = np.random.default_rng(seed)
    systems = []
    for _ in range(n):
        a_ub = rng.normal(size=(5, dimension))
        b_ub = rng.normal(size=5) + 3.0
        c = rng.normal(size=dimension)
        systems.append(
            LPSystem(
                c=c, a_ub=a_ub, b_ub=b_ub,
                bounds=[(0.0, 1.0)] * dimension,
            )
        )
    return systems


def _infeasible(dimension: int = 3):
    # x_0 >= 1 and x_0 <= 0 simultaneously.
    return LPSystem(
        c=np.ones(dimension),
        a_ub=np.vstack(
            [-np.eye(dimension)[0], np.eye(dimension)[0]]
        ),
        b_ub=np.array([-1.0, 0.0]),
        bounds=[(None, None)] * dimension,
    )


class _BrokenPool:
    """A pool whose submit always raises, as a dead executor would."""

    def submit(self, *args, **kwargs):
        raise RuntimeError("pool is dead")

    def shutdown(self, wait=True):
        pass


class TestBitIdentity:
    def test_matches_in_process_batching(self):
        systems = _systems(40)
        reference = BatchLPBackend().solve_many_raw(systems)
        with ProcessPoolLPBackend(procs=2, min_batch=4) as pool:
            pooled = pool.solve_many_raw(systems)
        assert len(reference) == len(pooled)
        for ref, got in zip(reference, pooled):
            assert ref.value == got.value
            np.testing.assert_array_equal(ref.x, got.x)

    def test_failures_isolated_per_system(self):
        systems = _systems(10)
        systems.insert(4, _infeasible())
        reference = BatchLPBackend().solve_many_raw(systems)
        with ProcessPoolLPBackend(procs=2, min_batch=4) as pool:
            pooled = pool.solve_many_raw(systems)
        assert isinstance(reference[4], InfeasibleLP)
        assert isinstance(pooled[4], InfeasibleLP)
        for index, (ref, got) in enumerate(zip(reference, pooled)):
            if index == 4:
                continue
            assert ref.value == got.value

    def test_shares_the_scipy_highs_cache_partition(self):
        # Sanctioned name sharing: pooled results are interchangeable
        # with the sequential backend's, so they replay from one cache.
        assert ProcessPoolLPBackend().name == "scipy-highs"


class TestSolveCounting:
    def test_counts_one_stacked_solve_per_chunk(self):
        with ProcessPoolLPBackend(procs=2, min_batch=4) as pool:
            pool.solve_many_raw(_systems(40))
            assert pool.solves == 2

    def test_small_batches_stay_in_process(self):
        with ProcessPoolLPBackend(procs=2, min_batch=16) as pool:
            pool.solve_many_raw(_systems(4))
            # In-process fallback: one stacked call, no pool started.
            assert pool.solves == 1
            assert pool._pool is None

    def test_one_process_pool_stays_in_process(self):
        with ProcessPoolLPBackend(procs=1, min_batch=2) as pool:
            pool.solve_many_raw(_systems(20))
            assert pool._pool is None


class TestDegradation:
    def test_broken_pool_falls_back_in_process(self):
        systems = _systems(20)
        reference = BatchLPBackend().solve_many_raw(systems)
        pool = ProcessPoolLPBackend(procs=2, min_batch=4)
        pool._pool = _BrokenPool()
        try:
            results = pool.solve_many_raw(systems)
        finally:
            pool.close()
        for ref, got in zip(reference, results):
            assert ref.value == got.value
        # The dead pool was discarded; the next batch rebuilds lazily.
        assert pool._pool is None

    def test_close_is_idempotent(self):
        pool = ProcessPoolLPBackend(procs=2, min_batch=4)
        pool.solve_many_raw(_systems(8))
        pool.close()
        pool.close()
        # The pool restarts lazily after close.
        results = pool.solve_many_raw(_systems(8))
        assert len(results) == 8
        pool.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolLPBackend(procs=0)
        with pytest.raises(ValueError):
            ProcessPoolLPBackend(min_batch=1)
