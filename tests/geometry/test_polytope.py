"""Tests for the utility-range polytope."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EmptyRegionError
from repro.geometry.hyperplane import preference_halfspace
from repro.geometry.polytope import UtilityPolytope


def random_halfspaces(d: int, count: int, seed: int):
    """Deterministic random preference half-spaces in dimension d."""
    rng = np.random.default_rng(seed)
    spaces = []
    for _ in range(count):
        a, b = rng.uniform(0.01, 1.0, size=(2, d))
        if not np.allclose(a, b):
            spaces.append(preference_halfspace(a, b))
    return spaces


class TestSimplexPolytope:
    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_vertices_are_unit_vectors(self, d):
        vertices = UtilityPolytope.simplex(d).vertices()
        assert vertices.shape == (d, d)
        # Every vertex is a unit vector and every unit vector appears.
        for vertex in vertices:
            assert np.isclose(vertex.max(), 1.0, atol=1e-9)
            assert np.isclose(np.abs(vertex).sum(), 1.0, atol=1e-9)
        assert np.isclose(np.abs(vertices.sum(axis=0) - 1.0).max(), 0.0, atol=1e-9)

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_vertex_rows_sum_to_one(self, d):
        vertices = UtilityPolytope.simplex(d).vertices()
        np.testing.assert_allclose(vertices.sum(axis=1), np.ones(d), atol=1e-9)

    def test_not_empty(self):
        assert not UtilityPolytope.simplex(3).is_empty()

    def test_contains_centroid(self):
        poly = UtilityPolytope.simplex(4)
        assert poly.contains(np.full(4, 0.25))

    def test_rejects_off_simplex_point(self):
        poly = UtilityPolytope.simplex(3)
        assert not poly.contains(np.array([0.5, 0.5, 0.5]))

    def test_chebyshev_center_inside(self):
        poly = UtilityPolytope.simplex(4)
        center, radius = poly.chebyshev_center()
        assert poly.contains(center)
        assert radius > 0

    def test_bounding_box_is_unit(self):
        e_min, e_max = UtilityPolytope.simplex(3).bounding_box()
        np.testing.assert_allclose(e_min, np.zeros(3), atol=1e-8)
        np.testing.assert_allclose(e_max, np.ones(3), atol=1e-8)

    def test_repr_mentions_counts(self):
        text = repr(UtilityPolytope.simplex(3))
        assert "d=3" in text


class TestIntersection:
    def test_with_halfspace_narrows(self):
        poly = UtilityPolytope.simplex(3)
        h = preference_halfspace(np.array([0.9, 0.1, 0.1]), np.array([0.1, 0.9, 0.1]))
        narrowed = poly.with_halfspace(h)
        assert narrowed.n_constraints == poly.n_constraints + 1
        # Every remaining vertex satisfies the half-space.
        for vertex in narrowed.vertices():
            assert h.contains(vertex, tol=1e-7)

    def test_intersection_preserves_halfspace_provenance(self):
        poly = UtilityPolytope.simplex(3)
        spaces = random_halfspaces(3, 3, seed=1)
        narrowed = poly.with_halfspaces(spaces)
        assert narrowed.halfspaces == tuple(spaces)

    def test_dimension_mismatch_raises(self):
        poly = UtilityPolytope.simplex(3)
        h = preference_halfspace(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            poly.with_halfspace(h)

    def test_contradictory_halfspaces_empty(self):
        poly = UtilityPolytope.simplex(3)
        h = preference_halfspace(
            np.array([0.9, 0.1, 0.1]), np.array([0.1, 0.9, 0.1])
        )
        # Strictly shifted opposite: eliminates the shared boundary too.
        g = preference_halfspace(
            np.array([0.05, 0.95, 0.1]), np.array([0.9, 0.1, 0.1])
        )
        narrowed = poly.with_halfspace(h).with_halfspace(g)
        # The two constraints conflict over most of the simplex; if the
        # result is non-empty its Chebyshev radius must be tiny.
        if not narrowed.is_empty():
            _, radius = narrowed.chebyshev_center()
            assert radius < 0.2

    def test_vertices_of_empty_raise(self):
        poly = UtilityPolytope.simplex(2)
        h = preference_halfspace(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        g = preference_halfspace(np.array([0.0, 1.1]), np.array([1.0, 0.0]))
        narrowed = poly.with_halfspace(h).with_halfspace(g)
        if narrowed.is_empty():
            with pytest.raises(EmptyRegionError):
                narrowed.vertices()


class TestVertexEnumeration:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("d", [3, 4, 5])
    def test_vertices_inside_polytope(self, d, seed):
        poly = UtilityPolytope.simplex(d).with_halfspaces(
            random_halfspaces(d, 3, seed=seed)
        )
        if poly.is_empty():
            return
        for vertex in poly.vertices():
            assert poly.contains(vertex, tol=1e-6)

    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_qhull_and_combinatorial_agree(self, seed):
        poly = UtilityPolytope.simplex(4).with_halfspaces(
            random_halfspaces(4, 2, seed=seed)
        )
        if poly.is_empty():
            return
        qhull = poly._vertices_qhull()
        combo = poly._vertices_combinatorial()
        if qhull is None:
            return
        assert qhull.shape == combo.shape
        q_sorted = qhull[np.lexsort(qhull.T)]
        c_sorted = combo[np.lexsort(combo.T)]
        np.testing.assert_allclose(q_sorted, c_sorted, atol=1e-6)

    def test_d2_interval_vertices(self):
        poly = UtilityPolytope.simplex(2).with_halfspace(
            preference_halfspace(np.array([0.9, 0.2]), np.array([0.2, 0.9]))
        )
        vertices = poly.vertices()
        assert vertices.shape[1] == 2
        assert 1 <= vertices.shape[0] <= 2

    def test_vertices_cached_and_copied(self):
        poly = UtilityPolytope.simplex(3)
        first = poly.vertices()
        first[0, 0] = 42.0
        second = poly.vertices()
        assert second[0, 0] != 42.0


class TestPruning:
    def test_pruned_removes_redundant(self):
        poly = UtilityPolytope.simplex(3)
        h = preference_halfspace(np.array([0.9, 0.1, 0.1]), np.array([0.1, 0.9, 0.1]))
        # Adding the same half-space twice: the duplicate is redundant.
        narrowed = poly.with_halfspace(h).with_halfspace(h)
        pruned = narrowed.pruned()
        assert pruned.n_constraints < narrowed.n_constraints

    def test_pruned_preserves_geometry(self, rng):
        poly = UtilityPolytope.simplex(4).with_halfspaces(
            random_halfspaces(4, 5, seed=11)
        )
        if poly.is_empty():
            return
        pruned = poly.pruned()
        for point in poly.sample(50, rng=rng):
            assert pruned.contains(point, tol=1e-6)
        v1 = poly.vertices()
        v2 = pruned.vertices()
        assert v1.shape == v2.shape

    def test_pruned_empty_is_noop(self):
        poly = UtilityPolytope.simplex(2)
        h = preference_halfspace(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        g = preference_halfspace(np.array([0.0, 1.5]), np.array([1.0, 0.0]))
        narrowed = poly.with_halfspace(h).with_halfspace(g)
        if narrowed.is_empty():
            assert narrowed.pruned() is narrowed


class TestSampling:
    @given(st.integers(min_value=0, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_samples_inside(self, seed):
        poly = UtilityPolytope.simplex(4).with_halfspaces(
            random_halfspaces(4, 2, seed=seed)
        )
        if poly.is_empty():
            return
        samples = poly.sample(30, rng=seed)
        assert samples.shape == (30, 4)
        for point in samples:
            assert poly.contains(point, tol=1e-6)

    def test_sample_zero(self):
        samples = UtilityPolytope.simplex(3).sample(0, rng=0)
        assert samples.shape == (0, 3)

    def test_sample_empty_raises(self):
        poly = UtilityPolytope.simplex(2)
        h = preference_halfspace(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        g = preference_halfspace(np.array([0.0, 1.5]), np.array([1.0, 0.0]))
        narrowed = poly.with_halfspace(h).with_halfspace(g)
        if narrowed.is_empty():
            with pytest.raises(EmptyRegionError):
                narrowed.sample(5, rng=0)


class TestBoundingBox:
    @pytest.mark.parametrize("seed", [2, 7])
    def test_box_contains_all_vertices(self, seed):
        poly = UtilityPolytope.simplex(4).with_halfspaces(
            random_halfspaces(4, 3, seed=seed)
        )
        if poly.is_empty():
            return
        e_min, e_max = poly.bounding_box()
        for vertex in poly.vertices():
            assert np.all(vertex >= e_min - 1e-6)
            assert np.all(vertex <= e_max + 1e-6)

    def test_box_tight_on_vertices(self):
        poly = UtilityPolytope.simplex(3)
        e_min, e_max = poly.bounding_box()
        vertices = poly.vertices()
        np.testing.assert_allclose(vertices.min(axis=0), e_min, atol=1e-7)
        np.testing.assert_allclose(vertices.max(axis=0), e_max, atol=1e-7)


class TestValidation:
    def test_bad_matrix_shape(self):
        with pytest.raises(ValueError):
            UtilityPolytope(np.zeros((2, 3)), np.zeros(2), dimension=3)

    def test_bad_vector_length(self):
        with pytest.raises(ValueError):
            UtilityPolytope(np.zeros((2, 2)), np.zeros(3), dimension=3)


class TestVolume:
    def test_simplex_volume(self):
        import math

        for d in (2, 3, 4, 5):
            poly = UtilityPolytope.simplex(d)
            expected = 1.0 / math.factorial(d - 1)
            assert abs(poly.volume() - expected) < 1e-9
            assert abs(poly.volume_fraction() - 1.0) < 1e-9

    def test_halfspace_splits_volume(self):
        poly = UtilityPolytope.simplex(3)
        h = preference_halfspace(
            np.array([0.9, 0.1, 0.5]), np.array([0.1, 0.9, 0.5])
        )
        positive = poly.with_halfspace(h)
        negative = poly.with_halfspace(h.flipped())
        total = positive.volume() + negative.volume()
        assert abs(total - poly.volume()) < 1e-9

    def test_volume_shrinks_under_intersection(self, rng):
        poly = UtilityPolytope.simplex(4)
        previous = poly.volume()
        for seed in range(3):
            spaces = random_halfspaces(4, 1, seed=seed)
            if not spaces:
                continue
            narrowed = poly.with_halfspace(spaces[0])
            if narrowed.is_empty():
                continue
            current = narrowed.volume()
            assert current <= previous + 1e-9
            poly, previous = narrowed, current

    def test_flat_range_zero_volume(self):
        poly = UtilityPolytope.simplex(2)
        h = preference_halfspace(np.array([0.6, 0.4]), np.array([0.4, 0.6]))
        flat = poly.with_halfspace(h).with_halfspace(h.flipped())
        if not flat.is_empty():
            assert flat.volume() <= 1e-9
