"""Tests for the incremental utility-range abstraction.

The load-bearing property is *clip == rebuild*: an
:class:`~repro.geometry.range.ExactRange` that maintains its vertex set
incrementally must round to exactly the vertex set a from-scratch
:class:`~repro.geometry.polytope.UtilityPolytope` enumeration produces
after the same answer sequence — otherwise the refactor silently changes
every algorithm built on top of it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, EmptyRegionError
from repro.geometry import lp
from repro.geometry.hyperplane import preference_halfspace
from repro.geometry.lp import ScipyHighsBackend
from repro.geometry.polytope import UtilityPolytope
from repro.geometry.range import (
    AmbientRange,
    ExactRange,
    RangeConfig,
    UpdatePreview,
    prefetch_updates,
)


def random_halfspaces(d: int, count: int, seed: int) -> list:
    """Deterministic random preference half-spaces in dimension ``d``."""
    rng = np.random.default_rng(seed)
    spaces = []
    for _ in range(count):
        a, b = rng.uniform(0.01, 1.0, size=(2, d))
        if not np.allclose(a, b):
            spaces.append(preference_halfspace(a, b))
    return spaces


def reference_vertices(d: int, halfspaces: list) -> np.ndarray:
    """The pre-refactor path: feasibility-check + re-enumerate each step."""
    poly = UtilityPolytope.simplex(d)
    for halfspace in halfspaces:
        narrowed = poly.with_halfspace(halfspace)
        if narrowed.is_empty():
            continue
        poly = narrowed
    return poly.vertices()


class TestRangeConfig:
    def test_defaults(self):
        config = RangeConfig()
        assert config.prune_above == 24
        assert config.on_infeasible == "raise"
        assert config.max_halfspaces is None

    def test_rejects_bad_prune_above(self):
        with pytest.raises(ConfigurationError):
            RangeConfig(prune_above=0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            RangeConfig(on_infeasible="ignore")

    def test_rejects_bad_cap(self):
        with pytest.raises(ConfigurationError):
            RangeConfig(max_halfspaces=0)


class TestExactRangeBasics:
    def test_starts_at_simplex(self):
        urange = ExactRange(3)
        vertices = urange.vertices()
        assert vertices.shape == (3, 3)
        np.testing.assert_allclose(vertices.sum(axis=1), np.ones(3), atol=1e-9)

    def test_rejects_low_dimension(self):
        with pytest.raises(ConfigurationError):
            ExactRange(1)

    def test_rejects_mismatched_halfspace(self):
        urange = ExactRange(3)
        halfspace = random_halfspaces(4, 1, seed=0)[0]
        with pytest.raises(ConfigurationError):
            urange.update(halfspace)

    def test_update_narrows_and_counts(self):
        urange = ExactRange(4, config=RangeConfig(on_infeasible="drop"))
        urange.vertices()  # trigger the initial enumeration
        applied = sum(
            urange.update(halfspace)
            for halfspace in random_halfspaces(4, 4, seed=1)
        )
        stats = urange.stats
        assert stats.updates == 4
        assert stats.rejected == 4 - applied
        assert stats.clips + stats.rebuilds - 1 >= applied
        assert len(urange.halfspaces) == applied

    def test_interior_point_is_contained(self):
        urange = ExactRange(3, config=RangeConfig(on_infeasible="drop"))
        for halfspace in random_halfspaces(3, 3, seed=2):
            urange.update(halfspace)
        assert urange.contains(urange.interior_point(), tol=1e-7)

    def test_sample_stays_inside(self):
        urange = ExactRange(3)
        for halfspace in random_halfspaces(3, 2, seed=3):
            urange.update(halfspace)
        samples = urange.sample(16, rng=0)
        assert samples.shape == (16, 3)
        for sample in samples:
            assert urange.contains(sample, tol=1e-6)

    def test_matches_polytope_sample_bitwise(self):
        """Hit-and-run through the range equals the from-scratch polytope."""
        spaces = random_halfspaces(3, 3, seed=4)
        urange = ExactRange(3)
        poly = UtilityPolytope.simplex(3)
        for halfspace in spaces:
            urange.update(halfspace)
            poly = poly.with_halfspace(halfspace)
        assert np.array_equal(urange.sample(8, rng=7), poly.sample(8, rng=7))
        ours = urange.chebyshev_center()
        theirs = poly.chebyshev_center()
        assert np.array_equal(ours[0], theirs[0]) and ours[1] == theirs[1]


class TestInfeasiblePolicy:
    def _contradiction(self, d: int):
        # ``a`` dominates ``b``, so "b preferred" empties any range; the
        # forward answer is redundant and always applies.
        rng = np.random.default_rng(5)
        b = rng.uniform(0.05, 0.8, size=d)
        a = b + 0.1
        forward = preference_halfspace(a, b)
        backward = preference_halfspace(b, a)
        return forward, backward

    def test_raise_policy(self):
        forward, backward = self._contradiction(3)
        urange = ExactRange(3, config=RangeConfig(on_infeasible="raise"))
        urange.update(forward)
        with pytest.raises(EmptyRegionError):
            urange.update(backward)

    def test_drop_policy_keeps_state(self):
        forward, backward = self._contradiction(3)
        urange = ExactRange(3, config=RangeConfig(on_infeasible="drop"))
        urange.update(forward)
        before = urange.vertices()
        assert not urange.update(backward)
        assert urange.stats.rejected == 1
        assert np.array_equal(urange.vertices(), before)
        assert len(urange.halfspaces) == 1

    def test_ambient_drop_policy(self):
        forward, backward = self._contradiction(4)
        urange = AmbientRange(4, config=RangeConfig(on_infeasible="drop"))
        urange.update(forward)
        assert not urange.update(backward)
        assert urange.halfspaces == (forward,)

    def test_ambient_raise_policy(self):
        forward, backward = self._contradiction(4)
        urange = AmbientRange(4)
        urange.update(forward)
        with pytest.raises(EmptyRegionError):
            urange.update(backward)


class TestClipMatchesRebuild:
    """The tentpole property: incremental clips == from-scratch enumeration."""

    @pytest.mark.parametrize("d", [2, 3, 4, 5, 6])
    def test_random_sequences(self, d):
        for seed in range(3):
            spaces = random_halfspaces(d, 12, seed=100 * d + seed)
            urange = ExactRange(d, config=RangeConfig(on_infeasible="drop"))
            for halfspace in spaces:
                urange.update(halfspace)
            assert np.array_equal(
                urange.vertices(), reference_vertices(d, spaces)
            )

    @pytest.mark.parametrize("d", [3, 4])
    def test_long_sequence_exercises_prune(self, d):
        # > prune_above constraints: the H-system must prune identically.
        spaces = random_halfspaces(d, 30, seed=11 * d)
        urange = ExactRange(d, config=RangeConfig(on_infeasible="drop"))
        for halfspace in spaces:
            urange.update(halfspace)
        assert np.array_equal(urange.vertices(), reference_vertices(d, spaces))

    def test_contradictory_sequence(self, ):
        # Opposite answers drive the range to (near) emptiness; the
        # surviving vertex set must still match the reference path.
        rng = np.random.default_rng(17)
        spaces = []
        for _ in range(6):
            a, b = rng.uniform(0.05, 1.0, size=(2, 4))
            spaces.append(preference_halfspace(a, b))
            spaces.append(preference_halfspace(b, a))
        urange = ExactRange(4, config=RangeConfig(on_infeasible="drop"))
        for halfspace in spaces:
            urange.update(halfspace)
        assert np.array_equal(urange.vertices(), reference_vertices(4, spaces))
        assert urange.stats.rejected > 0

    def test_near_parallel_cuts(self):
        # Nearly parallel planes produce sliver faces — the classic
        # degenerate-clip case; fallbacks must keep the sets identical.
        base = np.array([0.9, 0.5, 0.3])
        spaces = []
        for k in range(6):
            other = base + 1e-4 * (k + 1) * np.array([1.0, -1.0, 0.5])
            spaces.append(preference_halfspace(base, other))
        urange = ExactRange(3, config=RangeConfig(on_infeasible="drop"))
        for halfspace in spaces:
            urange.update(halfspace)
        assert np.array_equal(urange.vertices(), reference_vertices(3, spaces))

    @settings(max_examples=25, deadline=None)
    @given(
        d=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        count=st.integers(min_value=1, max_value=15),
    )
    def test_property_random_clip_equals_rebuild(self, d, seed, count):
        """Seeded property sweep over dimensions and sequence lengths."""
        spaces = random_halfspaces(d, count, seed=seed)
        urange = ExactRange(d, config=RangeConfig(on_infeasible="drop"))
        for halfspace in spaces:
            urange.update(halfspace)
        assert np.array_equal(urange.vertices(), reference_vertices(d, spaces))


class TestFromHalfspaces:
    def test_lazy_construction(self):
        # Keep only a consistent prefix so the construction is feasible.
        spaces = []
        poly = UtilityPolytope.simplex(4)
        for halfspace in random_halfspaces(4, 8, seed=6):
            narrowed = poly.with_halfspace(halfspace)
            if not narrowed.is_empty():
                poly = narrowed
                spaces.append(halfspace)
        urange = ExactRange.from_halfspaces(4, spaces)
        # Only the feasibility LP ran; no enumeration yet.
        assert urange.stats.rebuilds == 0
        reference = UtilityPolytope.simplex(4).with_halfspaces(spaces)
        assert np.array_equal(urange.vertices(), reference.vertices())

    def test_inconsistent_raises_even_when_dropping(self):
        # b + 0.1 dominates b, so "b preferred" is infeasible on its own.
        rng = np.random.default_rng(7)
        b = rng.uniform(0.05, 0.8, size=3)
        a = b + 0.1
        spaces = [preference_halfspace(a, b), preference_halfspace(b, a)]
        with pytest.raises(EmptyRegionError):
            ExactRange.from_halfspaces(
                3, spaces, config=RangeConfig(on_infeasible="drop")
            )

    def test_high_dimension_sampling(self):
        # Sampling-only workloads must not enumerate vertices.
        spaces = random_halfspaces(12, 6, seed=8)
        urange = ExactRange.from_halfspaces(12, spaces)
        samples = urange.sample(8, rng=0)
        assert samples.shape == (8, 12)
        assert urange.stats.rebuilds == 0


class TestAmbientRange:
    def test_surrogates_match_lp_helpers(self):
        spaces = random_halfspaces(6, 5, seed=9)
        urange = AmbientRange(6, config=RangeConfig(on_infeasible="drop"))
        for halfspace in spaces:
            urange.update(halfspace)
        kept = list(urange.halfspaces)
        center, radius = urange.inner_sphere()
        ref_center, ref_radius = lp.ambient_inner_sphere(kept, 6)
        assert np.array_equal(center, ref_center) and radius == ref_radius
        e_min, e_max = urange.bounds()
        ref_min, ref_max = lp.ambient_bounds(kept, 6)
        assert np.array_equal(e_min, ref_min) and np.array_equal(e_max, ref_max)
        normal = np.arange(6, dtype=float) - 2.5
        assert urange.split_margin(normal) == lp.ambient_split_margin(
            kept, 6, normal
        )

    def test_interior_point_is_sphere_center(self):
        urange = AmbientRange(4)
        assert np.array_equal(urange.interior_point(), urange.inner_sphere()[0])

    def test_working_set_cap_rotates_oldest(self):
        spaces = random_halfspaces(5, 8, seed=10)
        urange = AmbientRange(
            5, config=RangeConfig(on_infeasible="drop", max_halfspaces=3)
        )
        applied = [h for h in spaces if urange.update(h)]
        assert len(urange.halfspaces) == 3
        assert urange.halfspaces == tuple(applied[-3:])

    def test_cap_applied_before_feasibility(self):
        # With a cap, an answer contradicting only *rotated-out*
        # constraints is accepted: feasibility is judged on the capped
        # trial list (matching the old SinglePass working-set semantics).
        # The strict cycle u1 >= u2 >= u3 >= 1.2 u1 is empty as a whole
        # but every two-constraint subset has interior.
        base = np.full(3, 0.5)
        cycle = [
            np.array([0.2, -0.2, 0.0]),   # u1 >= u2
            np.array([0.0, 0.2, -0.2]),   # u2 >= u3
            np.array([-0.3, 0.0, 0.25]),  # u3 >= 1.2 u1
        ]
        spaces = [preference_halfspace(base + n, base) for n in cycle]
        uncapped = AmbientRange(3, config=RangeConfig(on_infeasible="drop"))
        for halfspace in spaces[:2]:
            assert uncapped.update(halfspace)
        assert not uncapped.update(spaces[2])
        capped = AmbientRange(3, config=RangeConfig(max_halfspaces=2))
        for halfspace in spaces:
            assert capped.update(halfspace)
        assert capped.halfspaces == tuple(spaces[1:])


class TestBackendSeam:
    def test_per_range_backend_counts_solves(self):
        backend = ScipyHighsBackend()
        urange = AmbientRange(4, backend=backend)
        urange.inner_sphere()
        assert backend.solves > 0
        assert urange.stats.backend_solves == backend.solves

    def test_use_backend_context(self):
        backend = ScipyHighsBackend()
        with lp.use_backend(backend):
            urange = ExactRange(3)
            urange.chebyshev_center()
        assert backend.solves > 0
        assert urange.stats.backend_solves == backend.solves

    def test_cache_hits_attributed(self):
        cache = lp.LPCache()
        urange = AmbientRange(4)
        with lp.use_cache(cache):
            urange.bounds()
            urange.bounds()
        assert urange.stats.cache_hits > 0
        assert urange.stats.solves_avoided >= urange.stats.cache_hits

    def test_clip_avoids_emptiness_solves(self):
        urange = ExactRange(4)
        urange.vertices()
        solved_before = urange.stats.backend_solves
        for halfspace in random_halfspaces(4, 6, seed=13):
            urange.update(halfspace)
        assert urange.stats.empties_avoided > 0
        # Clip-resolved updates issue no feasibility LPs of their own.
        assert urange.stats.backend_solves == solved_before


class TestPrefetchUpdates:
    """Batch priming must be invisible except for speed."""

    def _twin_ambient(self, d=5, answers=6, seed=31):
        spaces = random_halfspaces(d, answers * 4, seed=seed)
        plain = AmbientRange(d, config=RangeConfig(on_infeasible="drop"))
        primed = AmbientRange(d, config=RangeConfig(on_infeasible="drop"))
        for halfspace in spaces[: answers - 1]:
            plain.update(halfspace)
            primed.update(halfspace)
        # Pick a final half-space whose trial stays feasible, so the
        # update really applies (and its bound probes are prefetchable).
        kept = list(primed.halfspaces)
        for candidate in spaces[answers - 1 :]:
            if lp.ambient_is_feasible(kept + [candidate], d):
                return plain, primed, candidate
        raise AssertionError("no feasible final half-space found")

    def test_ambient_prefetch_is_bit_identical(self):
        plain, primed, new = self._twin_ambient()
        with lp.use_cache(lp.LPCache()):
            prefetch_updates([UpdatePreview(primed, new, bounds=True)])
            assert primed.update(new) == plain.update(new)
            primed_bounds = primed.bounds()
        plain_bounds = plain.bounds()
        assert np.array_equal(primed_bounds[0], plain_bounds[0])
        assert np.array_equal(primed_bounds[1], plain_bounds[1])
        assert primed.halfspaces == plain.halfspaces

    def test_ambient_prefetch_primes_cache(self):
        _, primed, new = self._twin_ambient()
        cache = lp.LPCache()
        with lp.use_cache(cache):
            prefetch_updates([UpdatePreview(primed, new, bounds=True)])
            hits_before = cache.hits
            primed.update(new)
            primed.bounds()
            # Feasibility probe plus all 2d bound probes replay as hits.
            assert cache.hits == hits_before + 1 + 2 * primed.dimension

    def test_ambient_prefetch_without_cache_is_noop(self):
        _, primed, new = self._twin_ambient()
        solves_before = lp.active_backend().solves
        prefetch_updates([UpdatePreview(primed, new, bounds=True)])
        assert lp.active_backend().solves == solves_before
        assert primed.update(new)

    def test_ambient_per_instance_backend_is_skipped(self):
        backend = ScipyHighsBackend()
        urange = AmbientRange(4, backend=backend)
        new = random_halfspaces(4, 1, seed=8)[0]
        with lp.use_cache(lp.LPCache()):
            prefetch_updates([UpdatePreview(urange, new)])
        # Its solves live in another cache partition; nothing ran.
        assert backend.solves == 0

    def test_infeasible_trial_prefetch_matches(self):
        rng = np.random.default_rng(5)
        b = rng.uniform(0.05, 0.8, size=4)
        a = b + 0.1
        forward = preference_halfspace(a, b)
        backward = preference_halfspace(b, a)
        plain = AmbientRange(4, config=RangeConfig(on_infeasible="drop"))
        primed = AmbientRange(4, config=RangeConfig(on_infeasible="drop"))
        plain.update(forward)
        primed.update(forward)
        with lp.use_cache(lp.LPCache()):
            prefetch_updates([UpdatePreview(primed, backward, bounds=True)])
            assert primed.update(backward) == plain.update(backward) == False  # noqa: E712
        assert primed.halfspaces == plain.halfspaces

    def test_exact_prefetch_is_bit_identical(self):
        spaces = random_halfspaces(4, 7, seed=12)
        plain = ExactRange(4, config=RangeConfig(on_infeasible="drop"))
        primed = ExactRange(4, config=RangeConfig(on_infeasible="drop"))
        for halfspace in spaces[:-1]:
            plain.update(halfspace)
            primed.update(halfspace)
        plain.vertices(), primed.vertices()
        prefetch_updates([UpdatePreview(primed, spaces[-1])])
        assert primed._clip_memo is not None
        assert primed.update(spaces[-1]) == plain.update(spaces[-1])
        assert np.array_equal(primed.vertices(), plain.vertices())
        # The memo is one-shot: consumed by the update.
        assert primed._clip_memo is None

    def test_exact_memo_survives_wrong_halfspace(self):
        # A memo stashed for one half-space must not corrupt an update
        # with a different one (exact fingerprint check).
        spaces = random_halfspaces(5, 8, seed=13)
        plain = ExactRange(5, config=RangeConfig(on_infeasible="drop"))
        primed = ExactRange(5, config=RangeConfig(on_infeasible="drop"))
        for halfspace in spaces[:-2]:
            plain.update(halfspace)
            primed.update(halfspace)
        plain.vertices(), primed.vertices()
        prefetch_updates([UpdatePreview(primed, spaces[-1])])
        assert primed.update(spaces[-2]) == plain.update(spaces[-2])
        assert np.array_equal(primed.vertices(), plain.vertices())

    def test_mixed_wave_prefetch(self):
        # One prefetch call over both range kinds, several sessions each.
        waves = []
        for seed in (40, 41, 42):
            spaces = random_halfspaces(4, 6, seed=seed)
            exact = ExactRange(4, config=RangeConfig(on_infeasible="drop"))
            ambient = AmbientRange(4, config=RangeConfig(on_infeasible="drop"))
            ref_exact = ExactRange(4, config=RangeConfig(on_infeasible="drop"))
            ref_ambient = AmbientRange(
                4, config=RangeConfig(on_infeasible="drop")
            )
            for halfspace in spaces[:-1]:
                for urange in (exact, ambient, ref_exact, ref_ambient):
                    urange.update(halfspace)
            exact.vertices(), ref_exact.vertices()
            waves.append((exact, ambient, ref_exact, ref_ambient, spaces[-1]))
        with lp.use_cache(lp.LPCache()):
            prefetch_updates(
                [
                    preview
                    for exact, ambient, _, _, new in waves
                    for preview in (
                        UpdatePreview(exact, new),
                        UpdatePreview(ambient, new, bounds=True),
                    )
                ]
            )
            for exact, ambient, ref_exact, ref_ambient, new in waves:
                assert exact.update(new) == ref_exact.update(new)
                assert np.array_equal(exact.vertices(), ref_exact.vertices())
                assert ambient.update(new) == ref_ambient.update(new)
                got, want = ambient.bounds(), ref_ambient.bounds()
                assert np.array_equal(got[0], want[0])
                assert np.array_equal(got[1], want[1])
