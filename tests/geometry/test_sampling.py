"""Tests for simplex and polytope samplers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import simplex
from repro.geometry.sampling import hit_and_run, sample_simplex


class TestSampleSimplex:
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_output_on_simplex(self, d, n):
        samples = sample_simplex(d, n, rng=0)
        assert samples.shape == (n, d)
        for row in samples:
            assert simplex.on_simplex(row, tol=1e-9)

    def test_deterministic_with_seed(self):
        a = sample_simplex(3, 5, rng=42)
        b = sample_simplex(3, 5, rng=42)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = sample_simplex(3, 5, rng=1)
        b = sample_simplex(3, 5, rng=2)
        assert not np.allclose(a, b)

    def test_roughly_uniform_means(self):
        samples = sample_simplex(4, 20_000, rng=0)
        np.testing.assert_allclose(samples.mean(axis=0), np.full(4, 0.25), atol=0.02)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            sample_simplex(0, 3)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            sample_simplex(3, -1)


class TestHitAndRun:
    def _square(self):
        a = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        b = np.array([1.0, 0.0, 1.0, 0.0])
        return a, b

    def test_samples_stay_inside(self):
        a, b = self._square()
        samples = hit_and_run(a, b, start=np.array([0.5, 0.5]), n_samples=100, rng=0)
        assert samples.shape == (100, 2)
        assert np.all(samples >= -1e-9)
        assert np.all(samples <= 1 + 1e-9)

    def test_covers_the_square(self):
        a, b = self._square()
        samples = hit_and_run(a, b, start=np.array([0.5, 0.5]), n_samples=2000, rng=1)
        # Mean near the centre and significant spread in both axes.
        np.testing.assert_allclose(samples.mean(axis=0), [0.5, 0.5], atol=0.05)
        assert np.all(samples.std(axis=0) > 0.2)

    def test_outside_start_rejected(self):
        a, b = self._square()
        with pytest.raises(GeometryError):
            hit_and_run(a, b, start=np.array([2.0, 0.5]), n_samples=5)

    def test_unbounded_polytope_rejected(self):
        a = np.array([[1.0, 0.0]])  # only x <= 1: unbounded
        b = np.array([1.0])
        with pytest.raises(GeometryError):
            hit_and_run(a, b, start=np.array([0.0, 0.0]), n_samples=5, rng=0)

    def test_zero_samples(self):
        a, b = self._square()
        samples = hit_and_run(a, b, start=np.array([0.5, 0.5]), n_samples=0, rng=0)
        assert samples.shape == (0, 2)

    def test_dimension_mismatch(self):
        a, b = self._square()
        with pytest.raises(ValueError):
            hit_and_run(a, b, start=np.array([0.5]), n_samples=5)

    def test_deterministic_with_seed(self):
        a, b = self._square()
        s1 = hit_and_run(a, b, start=np.array([0.5, 0.5]), n_samples=10, rng=7)
        s2 = hit_and_run(a, b, start=np.array([0.5, 0.5]), n_samples=10, rng=7)
        np.testing.assert_array_equal(s1, s2)
