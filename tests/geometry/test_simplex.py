"""Tests for reduced-coordinate simplex mapping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import simplex


def simplex_points(d: int):
    """Hypothesis strategy: valid utility vectors of dimension d."""
    return (
        st.lists(
            st.floats(min_value=0.001, max_value=1.0),
            min_size=d,
            max_size=d,
        )
        .map(lambda xs: np.array(xs) / np.sum(xs))
    )


class TestReduceLift:
    def test_reduce_point_drops_last(self):
        u = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(simplex.reduce_point(u), [0.2, 0.3])

    def test_lift_point_restores_sum(self):
        x = np.array([0.2, 0.3])
        lifted = simplex.lift_point(x)
        np.testing.assert_allclose(lifted, [0.2, 0.3, 0.5])

    def test_lift_points_batch(self):
        xs = np.array([[0.1, 0.2], [0.4, 0.4]])
        lifted = simplex.lift_points(xs)
        assert lifted.shape == (2, 3)
        np.testing.assert_allclose(lifted.sum(axis=1), [1.0, 1.0])

    @given(simplex_points(4))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, u):
        restored = simplex.lift_point(simplex.reduce_point(u))
        np.testing.assert_allclose(restored, u, atol=1e-12)

    def test_reduce_point_copies(self):
        u = np.array([0.5, 0.5])
        x = simplex.reduce_point(u)
        x[0] = 99.0
        assert u[0] == 0.5


class TestReduceNormal:
    @given(
        st.lists(
            st.floats(min_value=-1, max_value=1), min_size=3, max_size=3
        ),
        simplex_points(3),
    )
    @settings(max_examples=50, deadline=None)
    def test_equivalence_of_forms(self, w, u):
        """a . x >= b holds in reduced space iff u . w >= 0 in ambient."""
        w = np.array(w)
        a, b = simplex.reduce_normal(w)
        x = simplex.reduce_point(u)
        ambient = float(u @ w)
        reduced = float(a @ x) - b
        assert ambient == pytest.approx(reduced, abs=1e-9)

    def test_rejects_scalar_dimension(self):
        with pytest.raises(ValueError):
            simplex.reduce_normal(np.array([1.0]))


class TestSimplexConstraints:
    def test_shapes(self):
        a, b = simplex.simplex_constraints(4)
        assert a.shape == (4, 3)
        assert b.shape == (4,)

    def test_unit_vectors_feasible(self):
        a, b = simplex.simplex_constraints(3)
        for vertex in simplex.simplex_vertices(3):
            x = simplex.reduce_point(vertex)
            assert np.all(a @ x <= b + 1e-12)

    def test_centroid_strictly_feasible(self):
        a, b = simplex.simplex_constraints(5)
        x = simplex.reduce_point(simplex.simplex_centroid(5))
        assert np.all(a @ x < b)

    def test_outside_point_infeasible(self):
        a, b = simplex.simplex_constraints(3)
        assert not np.all(a @ np.array([0.8, 0.8]) <= b)

    def test_rejects_dimension_one(self):
        with pytest.raises(ValueError):
            simplex.simplex_constraints(1)


class TestHelpers:
    def test_vertices_are_identity(self):
        np.testing.assert_array_equal(simplex.simplex_vertices(3), np.eye(3))

    def test_centroid_sums_to_one(self):
        assert simplex.simplex_centroid(7).sum() == pytest.approx(1.0)

    def test_on_simplex_accepts_valid(self):
        assert simplex.on_simplex(np.array([0.25, 0.75]))

    def test_on_simplex_rejects_negative(self):
        assert not simplex.on_simplex(np.array([-0.1, 1.1]))

    def test_on_simplex_rejects_bad_sum(self):
        assert not simplex.on_simplex(np.array([0.4, 0.4]))

    def test_on_simplex_rejects_matrix(self):
        assert not simplex.on_simplex(np.eye(2))
