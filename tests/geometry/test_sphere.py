"""Tests for enclosing/inscribed spheres — including Lemma 3."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.hyperplane import preference_halfspace
from repro.geometry.sphere import (
    Sphere,
    enclosing_radius,
    inner_sphere,
    minimum_enclosing_sphere,
    ritter_sphere,
)


def point_clouds(d: int, max_points: int = 12):
    return st.lists(
        st.lists(
            st.floats(min_value=-1.0, max_value=1.0), min_size=d, max_size=d
        ),
        min_size=1,
        max_size=max_points,
    ).map(np.array)


class TestSphere:
    def test_contains_center(self):
        ball = Sphere(np.zeros(3), 1.0)
        assert ball.contains(np.zeros(3))

    def test_contains_boundary(self):
        ball = Sphere(np.zeros(2), 1.0)
        assert ball.contains(np.array([1.0, 0.0]))

    def test_excludes_outside(self):
        ball = Sphere(np.zeros(2), 1.0)
        assert not ball.contains(np.array([1.5, 0.0]))

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Sphere(np.zeros(2), -0.1)

    def test_features_layout(self):
        ball = Sphere(np.array([0.1, 0.2]), 0.3)
        np.testing.assert_allclose(ball.features(), [0.1, 0.2, 0.3])


class TestMinimumEnclosingSphere:
    @given(point_clouds(3))
    @settings(max_examples=60, deadline=None)
    def test_encloses_all_points(self, points):
        ball = minimum_enclosing_sphere(points, rng=0)
        for point in points:
            assert ball.contains(point, tol=1e-6)

    def test_single_point_zero_radius(self):
        ball = minimum_enclosing_sphere(np.array([[0.3, 0.7]]), rng=0)
        assert ball.radius == 0.0

    def test_two_points_midpoint(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0]])
        ball = minimum_enclosing_sphere(points, rng=0)
        assert ball.radius == pytest.approx(0.5, abs=1e-3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            minimum_enclosing_sphere(np.empty((0, 3)))

    def test_near_optimal_on_simplex_vertices(self):
        # Exact MEB of the d-simplex corners has radius sqrt((d-1)/d).
        # The paper's mover converges to a local optimum (Lemma 3 only
        # guarantees non-increase); within 10% of the exact ball is the
        # empirically observed regime.
        d = 4
        ball = minimum_enclosing_sphere(np.eye(d), rng=3)
        exact = np.sqrt((d - 1) / d)
        assert ball.radius <= exact * 1.10

    def test_lemma3_radius_nonincreasing(self):
        """Lemma 3: each iteration's enclosing radius does not grow."""
        rng = np.random.default_rng(7)
        points = rng.uniform(size=(20, 3))
        low, high = points.min(axis=0), points.max(axis=0)
        center = rng.uniform(low, high)
        previous = enclosing_radius(points, center)
        for _ in range(50):
            distances = np.linalg.norm(points - center, axis=1)
            order = np.argsort(distances)
            gap = distances[order[-1]] - distances[order[-2]]
            offset = 0.5 * gap
            if offset < 1e-12:
                break
            direction = points[order[-1]] - center
            center = center + (offset / np.linalg.norm(direction)) * direction
            current = enclosing_radius(points, center)
            assert current <= previous + 1e-9
            previous = current


class TestRitterSphere:
    @given(point_clouds(4))
    @settings(max_examples=60, deadline=None)
    def test_encloses_all_points(self, points):
        ball = ritter_sphere(points)
        for point in points:
            assert ball.contains(point, tol=1e-6)

    def test_iterative_not_much_worse_than_ritter(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(size=(40, 4))
        iterative = minimum_enclosing_sphere(points, rng=1)
        ritter = ritter_sphere(points)
        # The paper's mover should be at least competitive with Ritter.
        assert iterative.radius <= ritter.radius * 1.10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ritter_sphere(np.empty((0, 2)))


class TestInnerSphere:
    def test_simplex_inner_sphere(self):
        ball = inner_sphere([], 3)
        np.testing.assert_allclose(ball.center, np.full(3, 1 / 3), atol=1e-6)
        assert ball.radius > 0

    def test_radius_shrinks_with_constraints(self):
        h = preference_halfspace(
            np.array([0.9, 0.1, 0.1]), np.array([0.1, 0.9, 0.1])
        )
        free = inner_sphere([], 3)
        constrained = inner_sphere([h], 3)
        assert constrained.radius <= free.radius + 1e-9

    def test_center_respects_halfspace(self):
        h = preference_halfspace(
            np.array([0.9, 0.1, 0.1]), np.array([0.1, 0.9, 0.1])
        )
        ball = inner_sphere([h], 3)
        assert h.contains(ball.center, tol=1e-7)
