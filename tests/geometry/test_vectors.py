"""Tests for utility arithmetic and the regret ratio."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.vectors import (
    regret_ratio,
    regret_ratios,
    top_point_index,
    top_point_indices,
    utilities,
)


def datasets(d: int):
    return st.lists(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=d, max_size=d),
        min_size=2,
        max_size=10,
    ).map(np.array)


def simplex_vectors(d: int):
    return st.lists(
        st.floats(min_value=0.001, max_value=1.0), min_size=d, max_size=d
    ).map(lambda xs: np.array(xs) / np.sum(xs))


class TestUtilities:
    def test_paper_example(self):
        """Example 1 of the paper: f_u(p_3) = 0.71 for u = (0.3, 0.7)."""
        points = np.array([[0.5, 0.8]])
        value = utilities(points, np.array([0.3, 0.7]))
        assert value[0] == pytest.approx(0.71)

    def test_top_point_index_paper_example(self):
        from repro.data import toy_database

        toy = toy_database()
        assert top_point_index(toy.points, np.array([0.3, 0.7])) == 2

    def test_batch_top_points(self):
        points = np.array([[1.0, 0.0], [0.0, 1.0]])
        us = np.array([[0.9, 0.1], [0.1, 0.9]])
        np.testing.assert_array_equal(top_point_indices(points, us), [0, 1])


class TestRegretRatio:
    def test_paper_example2(self):
        """Example 2: regratio(p_2, u) = (0.71 - 0.58) / 0.71 ~ 0.18."""
        points = np.array([[0.0, 1.0], [0.3, 0.7], [0.5, 0.8], [0.7, 0.4], [1.0, 0.0]])
        u = np.array([0.3, 0.7])
        value = regret_ratio(points, points[1], u)
        assert value == pytest.approx((0.71 - 0.58) / 0.71, abs=1e-9)

    @given(datasets(3), simplex_vectors(3))
    @settings(max_examples=80, deadline=None)
    def test_in_unit_interval(self, points, u):
        for q in points:
            value = regret_ratio(points, q, u)
            assert -1e-12 <= value <= 1.0 + 1e-12

    @given(datasets(3), simplex_vectors(3))
    @settings(max_examples=50, deadline=None)
    def test_best_point_has_zero_regret(self, points, u):
        best = points[top_point_index(points, u)]
        assert regret_ratio(points, best, u) == pytest.approx(0.0, abs=1e-12)

    def test_nonpositive_best_rejected(self):
        points = np.array([[0.0, 0.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            regret_ratio(points, points[0], np.array([0.5, 0.5]))

    @given(datasets(4))
    @settings(max_examples=30, deadline=None)
    def test_batch_matches_scalar(self, points):
        us = np.array([[0.25, 0.25, 0.25, 0.25], [0.7, 0.1, 0.1, 0.1]])
        q = points[0]
        batch = regret_ratios(points, q, us)
        for row, u in enumerate(us):
            assert batch[row] == pytest.approx(regret_ratio(points, q, u))
