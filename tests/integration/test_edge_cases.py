"""Edge-case integration tests: degenerate thresholds, tiny datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    SinglePassSession,
    UHRandomSession,
    UtilityApproxSession,
)
from repro.core import EAConfig, run_session, train_ea
from repro.data.datasets import Dataset
from repro.data.utility import sample_training_utilities
from repro.users import OracleUser


@pytest.fixture(scope="module")
def two_point_dataset():
    return Dataset(np.array([[1.0, 0.2], [0.2, 1.0]]), name="pair")


class TestImmediateTermination:
    def test_ea_huge_epsilon_zero_rounds(self, small_anti_3d):
        """With eps ~ 1 the whole simplex is terminal: no questions."""
        agent = train_ea(
            small_anti_3d,
            sample_training_utilities(3, 2, rng=0),
            config=EAConfig(epsilon=0.95, n_samples=16),
            rng=1,
            updates_per_episode=1,
        )
        result = run_session(
            agent.new_session(rng=2), OracleUser(np.array([0.2, 0.4, 0.4]))
        )
        assert result.rounds == 0
        assert result.recommendation_index >= 0

    def test_uh_random_huge_epsilon_few_rounds(self, small_anti_3d):
        result = run_session(
            UHRandomSession(small_anti_3d, epsilon=0.95, rng=0),
            OracleUser(np.array([0.3, 0.3, 0.4])),
        )
        assert result.rounds <= 2

    def test_single_point_recommendation_valid(self, small_anti_3d):
        """Whatever happens, the recommendation indexes the dataset."""
        result = run_session(
            UHRandomSession(small_anti_3d, epsilon=0.9, rng=1),
            OracleUser(np.array([0.5, 0.25, 0.25])),
        )
        assert 0 <= result.recommendation_index < small_anti_3d.n


class TestTinyDatasets:
    def test_two_points_one_question(self, two_point_dataset):
        """Two skyline points: a single comparison settles everything."""
        user = OracleUser(np.array([0.8, 0.2]))
        result = run_session(
            UHRandomSession(two_point_dataset, epsilon=0.05, rng=0), user
        )
        assert result.rounds <= 2
        assert result.recommendation_index == 0

    def test_single_pass_two_points(self, two_point_dataset):
        user = OracleUser(np.array([0.2, 0.8]))
        result = run_session(
            SinglePassSession(two_point_dataset, epsilon=0.05, rng=0), user
        )
        assert result.recommendation_index == 1

    def test_utility_approx_two_dimensions(self, two_point_dataset):
        user = OracleUser(np.array([0.7, 0.3]))
        result = run_session(
            UtilityApproxSession(two_point_dataset, epsilon=0.1), user,
            max_rounds=200,
        )
        assert not result.truncated
        assert result.recommendation_index == 0


class TestExtremeUsers:
    """Users whose utility sits exactly on a simplex corner."""

    @pytest.mark.parametrize("corner", [0, 1, 2])
    def test_corner_utility_handled(self, small_anti_3d, corner):
        utility = np.zeros(3)
        utility[corner] = 1.0
        user = OracleUser(utility)
        result = run_session(
            UHRandomSession(small_anti_3d, epsilon=0.1, rng=corner), user
        )
        assert not result.truncated
        from repro.geometry.vectors import regret_ratio

        regret = regret_ratio(
            small_anti_3d.points, result.recommendation, utility
        )
        assert regret <= 0.1 + 1e-6

    def test_uniform_utility_handled(self, small_anti_3d):
        user = OracleUser(np.full(3, 1 / 3))
        result = run_session(
            UHRandomSession(small_anti_3d, epsilon=0.1, rng=5), user
        )
        assert not result.truncated
