"""End-to-end integration: all algorithms on shared datasets and users."""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    SinglePassSession,
    UHRandomSession,
    UHSimplexSession,
    UtilityApproxSession,
)
from repro.core import run_session
from repro.eval.metrics import max_regret_ratio, session_regret
from repro.users import OracleUser


class TestAllMethodsAgree:
    """Every method must return an eps-good point for the same users."""

    def test_exact_methods_meet_threshold(
        self, small_anti_3d, test_utilities_3d, trained_ea_3d
    ):
        factories = {
            "EA": lambda: trained_ea_3d.new_session(rng=11),
            "UH-Random": lambda: UHRandomSession(small_anti_3d, rng=11),
            "UH-Simplex": lambda: UHSimplexSession(small_anti_3d, rng=11),
        }
        for name, factory in factories.items():
            for u in test_utilities_3d:
                user = OracleUser(u)
                result = run_session(factory(), user)
                regret = session_regret(small_anti_3d, result, user)
                assert regret <= 0.1 + 1e-6, f"{name} exceeded threshold"

    def test_approximate_methods_meet_threshold_empirically(
        self, small_anti_3d, test_utilities_3d, trained_aa_3d
    ):
        factories = {
            "AA": lambda: trained_aa_3d.new_session(rng=13),
            "SinglePass": lambda: SinglePassSession(small_anti_3d, rng=13),
            "UtilityApprox": lambda: UtilityApproxSession(small_anti_3d),
        }
        for name, factory in factories.items():
            for u in test_utilities_3d:
                user = OracleUser(u)
                result = run_session(factory(), user, max_rounds=1_000)
                regret = session_regret(small_anti_3d, result, user)
                assert regret <= 0.1 + 1e-6, f"{name} exceeded threshold"


class TestHeadlineShape:
    """The paper's qualitative claims at test scale."""

    def test_rl_methods_competitive_with_baselines(
        self, small_anti_3d, test_utilities_3d, trained_ea_3d
    ):
        """EA should need no more rounds than UH-Random on average."""
        ea_rounds = []
        random_rounds = []
        for seed, u in enumerate(test_utilities_3d):
            ea_rounds.append(
                run_session(
                    trained_ea_3d.new_session(rng=seed), OracleUser(u)
                ).rounds
            )
            random_rounds.append(
                run_session(
                    UHRandomSession(small_anti_3d, rng=seed), OracleUser(u)
                ).rounds
            )
        assert np.mean(ea_rounds) <= np.mean(random_rounds) + 0.5

    def test_max_regret_decreases_during_session(
        self, small_anti_3d, trained_ea_3d
    ):
        """The progress metric of Figures 7-8 trends downward."""
        user = OracleUser(np.array([0.35, 0.3, 0.35]))
        session = trained_ea_3d.new_session(rng=21)
        values = []
        while not session.finished and session.rounds < 30:
            question = session.next_question()
            session.observe(user.prefers(question.p_i, question.p_j))
            values.append(
                max_regret_ratio(
                    small_anti_3d,
                    session.recommend(),
                    list(session.halfspaces),
                    n_samples=300,
                    rng=0,
                )
            )
        assert values[-1] <= values[0] + 1e-9

    def test_fewer_rounds_with_larger_epsilon(
        self, small_anti_3d, trained_ea_3d
    ):
        """Figure 9 trend: RL agents exploit looser thresholds."""
        from repro.core import EAConfig, train_ea
        from repro.data.utility import sample_training_utilities

        train = sample_training_utilities(3, 10, rng=31)
        loose_agent = train_ea(
            small_anti_3d,
            train,
            config=EAConfig(epsilon=0.3, n_samples=32),
            rng=32,
            updates_per_episode=2,
        )
        tight_rounds = []
        loose_rounds = []
        for seed in range(3):
            u = np.random.default_rng(seed + 40).dirichlet(np.ones(3))
            tight_rounds.append(
                run_session(
                    trained_ea_3d.new_session(rng=seed), OracleUser(u)
                ).rounds
            )
            loose_rounds.append(
                run_session(
                    loose_agent.new_session(rng=seed), OracleUser(u)
                ).rounds
            )
        assert np.mean(loose_rounds) <= np.mean(tight_rounds)


class TestDeterminism:
    def test_identical_seeds_identical_sessions(self, small_anti_3d, trained_ea_3d):
        u = np.array([0.3, 0.3, 0.4])
        first = run_session(trained_ea_3d.new_session(rng=99), OracleUser(u))
        second = run_session(trained_ea_3d.new_session(rng=99), OracleUser(u))
        assert first.rounds == second.rounds
        assert first.recommendation_index == second.recommendation_index
