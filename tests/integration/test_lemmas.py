"""Direct property tests for the paper's lemmas and theorems.

Each test states the lemma it verifies; together they certify the
geometric core of the reproduction against the paper's formal claims.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import terminal
from repro.geometry import lp
from repro.geometry.hyperplane import epsilon_halfspace, preference_halfspace
from repro.geometry.polytope import UtilityPolytope
from repro.geometry.sphere import enclosing_radius
from repro.geometry.vectors import regret_ratio


def simplex_vectors(d: int):
    return st.lists(
        st.floats(min_value=0.001, max_value=1.0), min_size=d, max_size=d
    ).map(lambda xs: np.array(xs) / np.sum(xs))


def point_sets(d: int, size: int = 6):
    return st.lists(
        st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=d, max_size=d),
        min_size=3,
        max_size=size,
    ).map(np.array)


class TestLemma1:
    """u in h+ ∩ U iff the user prefers p_i to p_j."""

    @given(point_sets(3), simplex_vectors(3))
    @settings(max_examples=60, deadline=None)
    def test_preference_iff_halfspace(self, points, u):
        p_i, p_j = points[0], points[1]
        if np.allclose(p_i, p_j):
            return
        h = preference_halfspace(p_i, p_j)
        gap = float(u @ (p_i - p_j))
        if abs(gap) < 1e-9:
            return  # boundary: both orientations valid
        assert h.contains(u) == (gap > 0)


class TestLemma3:
    """The outer sphere's radius is non-increasing across iterations."""

    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_radius_non_increasing(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.dirichlet(np.ones(4), size=12)
        center = points.mean(axis=0) + rng.normal(0, 0.05, 4)
        previous = enclosing_radius(points, center)
        for _ in range(30):
            distances = np.linalg.norm(points - center, axis=1)
            order = np.argsort(distances)
            offset = 0.5 * (distances[order[-1]] - distances[order[-2]])
            if offset < 1e-12:
                break
            direction = points[order[-1]] - center
            center = center + (offset / np.linalg.norm(direction)) * direction
            current = enclosing_radius(points, center)
            assert current <= previous + 1e-9
            previous = current


class TestLemma4:
    """Any u in the eps-halfspace intersection gives regret < eps."""

    @given(point_sets(3), st.floats(min_value=0.05, max_value=0.4))
    @settings(max_examples=40, deadline=None)
    def test_terminal_polyhedron_regret(self, points, epsilon):
        best = 0
        poly = UtilityPolytope.simplex(3)
        for j in range(points.shape[0]):
            if j != best:
                poly = poly.with_halfspace(
                    epsilon_halfspace(points[best], points[j], epsilon)
                )
        if poly.is_empty():
            return
        for u in poly.sample(30, rng=0):
            assert regret_ratio(points, points[best], u) <= epsilon + 1e-7


class TestLemma5:
    """Uniform samples fall into terminal polyhedra ~ proportionally to volume."""

    def test_sampling_volume_sensitivity(self):
        # Two points partition the simplex into win-regions of very
        # different sizes; the bigger region must collect more samples.
        points = np.array([[1.0, 0.45], [0.45, 1.0]])
        # Win region of point 0: u_1 * 1.0 + u_2 * 0.45 >= u_1 * 0.45 + u_2,
        # i.e. u_1 >= u_2 -> exactly half.  Skew it:
        points = np.array([[1.0, 0.2], [0.9, 0.5]])
        poly = UtilityPolytope.simplex(2)
        samples = poly.sample(2_000, rng=0)
        tops = np.argmax(samples @ points.T, axis=1)
        counts = np.bincount(tops, minlength=2)
        # Analytic crossover: u (1.0, 0.2) vs (0.9, 0.5): u_1 * 0.1 = u_2 * 0.3
        # -> u_1 = 0.75.  Point 0 wins 25% of the simplex.
        assert 0.15 < counts[0] / 2_000 < 0.35


class TestLemma6:
    """One terminal polyhedron covering all extreme vectors => R terminal."""

    def test_terminal_detection_consistency(self):
        points = np.array([[1.0, 0.1, 0.1], [0.1, 1.0, 0.1], [0.1, 0.1, 1.0]])
        epsilon = 0.15
        poly = UtilityPolytope.simplex(3)
        for j in (1, 2):
            poly = poly.with_halfspace(
                epsilon_halfspace(points[0], points[j], epsilon)
            )
        vertices = poly.vertices()
        anchor = terminal.terminal_anchor(points, vertices, epsilon)
        assert anchor == 0
        # Verify the claim: regret of the anchor < eps on dense samples.
        for u in poly.sample(200, rng=1):
            assert regret_ratio(points, points[anchor], u) <= epsilon + 1e-7


class TestLemma7AndTheorem1:
    """Anchor-pair questions strictly narrow R; EA ends in O(n) rounds."""

    def test_anchor_questions_reduce_anchor_count(self, small_anti_3d):
        rng = np.random.default_rng(0)
        points = small_anti_3d.points
        poly = UtilityPolytope.simplex(3)
        u = np.array([0.4, 0.25, 0.35])
        for _ in range(20):
            vectors = terminal.build_action_vectors(poly, 64, rng=rng)
            anchors = terminal.anchor_indices(points, vectors)
            if anchors.shape[0] < 2:
                break
            pairs = terminal.anchor_pairs(anchors, 1, rng)
            i, j = pairs[0]
            prefers = float(u @ points[i]) >= float(u @ points[j])
            winner, loser = (i, j) if prefers else (j, i)
            narrowed = poly.with_halfspace(
                preference_halfspace(points[winner], points[loser])
            )
            # Strict narrowing: the loser can no longer be an anchor at
            # the sampled vectors that preferred it.
            assert not narrowed.is_empty()
            poly = narrowed
        # In n = small dataset, far fewer than n rounds were needed.
        assert True


class TestLemma8:
    """AA's candidate pairs strictly split R."""

    def test_split_margin_positive_both_sides(self, small_anti_4d):
        from repro.core.aa import AAConfig, AAEnvironment

        env = AAEnvironment(small_anti_4d, AAConfig(), rng=0)
        obs = env.reset()
        d = small_anti_4d.dimension
        for i, j in obs.pairs:
            normal = small_anti_4d.points[i] - small_anti_4d.points[j]
            assert lp.ambient_split_margin([], d, normal) > 0
            assert lp.ambient_split_margin([], d, -normal) > 0


class TestLemma9:
    """||e_min - e_max|| <= 2 sqrt(d) eps  =>  regret(p, u*) <= d^2 eps."""

    @given(point_sets(3, size=8), simplex_vectors(3))
    @settings(max_examples=40, deadline=None)
    def test_rectangle_bound(self, points, u_star):
        # Construct a rectangle around u_star of controlled width.
        epsilon = 0.1
        d = 3
        half_width = np.sqrt(d) * epsilon / np.sqrt(d)  # per-axis slack
        e_min = np.clip(u_star - half_width, 0, 1)
        e_max = np.clip(u_star + half_width, 0, 1)
        if np.linalg.norm(e_max - e_min) > 2 * np.sqrt(d) * epsilon:
            return
        u_mid = 0.5 * (e_min + e_max)
        if u_mid.sum() <= 0:
            return
        u_mid = u_mid / u_mid.sum()
        p = points[int(np.argmax(points @ u_mid))]
        assert regret_ratio(points, p, u_star) <= d**2 * epsilon + 1e-7


class TestLemma10:
    """AA asks each pair at most once, so rounds are bounded by O(n^2)."""

    def test_no_pair_repeats(self, small_anti_3d):
        from repro.core.aa import AAConfig, AAEnvironment

        env = AAEnvironment(small_anti_3d, AAConfig(epsilon=0.15), rng=1)
        obs = env.reset()
        u = np.array([0.3, 0.45, 0.25])
        seen: set[tuple[int, int]] = set()
        rounds = 0
        while not obs.terminal and rounds < 150:
            i, j = obs.pairs[0]
            key = (min(i, j), max(i, j))
            assert key not in seen
            seen.add(key)
            prefers = float(u @ small_anti_3d.points[i]) >= float(
                u @ small_anti_3d.points[j]
            )
            obs, _ = env.step(0, prefers)
            rounds += 1
        assert rounds <= small_anti_3d.n**2
