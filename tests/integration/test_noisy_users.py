"""Robustness under noisy answers — the paper's future-work scenario.

The paper assumes truthful users and defers mistakes to future work; the
implementation nevertheless degrades gracefully: inconsistent answers are
dropped (AA, SinglePass) or end the session with the best point found so
far (EA, UH-*), never crashing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SinglePassSession, UHRandomSession
from repro.core import run_session
from repro.eval.metrics import session_regret
from repro.users import NoisyUser


@pytest.fixture
def noisy_user_factory():
    def make(u: np.ndarray, seed: int) -> NoisyUser:
        return NoisyUser(u, error_rate=0.3, temperature=0.05, rng=seed)

    return make


class TestNoisyRobustness:
    def test_ea_never_crashes(
        self, trained_ea_3d, small_anti_3d, noisy_user_factory
    ):
        for seed in range(3):
            u = np.random.default_rng(seed).dirichlet(np.ones(3))
            user = noisy_user_factory(u, seed)
            result = run_session(
                trained_ea_3d.new_session(rng=seed), user, max_rounds=200
            )
            assert result.recommendation_index >= 0

    def test_aa_never_crashes(
        self, trained_aa_3d, small_anti_3d, noisy_user_factory
    ):
        for seed in range(3):
            u = np.random.default_rng(seed).dirichlet(np.ones(3))
            user = noisy_user_factory(u, seed)
            result = run_session(
                trained_aa_3d.new_session(rng=seed), user, max_rounds=200
            )
            assert result.recommendation_index >= 0

    def test_uh_random_never_crashes(self, small_anti_3d, noisy_user_factory):
        for seed in range(3):
            u = np.random.default_rng(seed).dirichlet(np.ones(3))
            user = noisy_user_factory(u, seed)
            result = run_session(
                UHRandomSession(small_anti_3d, rng=seed), user, max_rounds=200
            )
            assert result.recommendation_index >= 0

    def test_single_pass_never_crashes(self, small_anti_3d, noisy_user_factory):
        for seed in range(3):
            u = np.random.default_rng(seed).dirichlet(np.ones(3))
            user = noisy_user_factory(u, seed)
            result = run_session(
                SinglePassSession(small_anti_3d, rng=seed),
                user,
                max_rounds=1_000,
            )
            assert result.recommendation_index >= 0

    def test_mild_noise_keeps_regret_reasonable(
        self, trained_ea_3d, small_anti_3d
    ):
        """With rare mistakes the result should still be decent."""
        regrets = []
        for seed in range(5):
            u = np.random.default_rng(seed + 100).dirichlet(np.ones(3))
            user = NoisyUser(u, error_rate=0.05, temperature=0.01, rng=seed)
            result = run_session(
                trained_ea_3d.new_session(rng=seed), user, max_rounds=200
            )
            regrets.append(session_regret(small_anti_3d, result, user))
        assert float(np.median(regrets)) <= 0.3
