"""Cross-cutting property-based tests (hypothesis).

These capture invariants that span modules: order-independence of
intersections, monotonicity of the terminal test in epsilon, skyline
idempotence, consistency between sampling, volume and membership.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.terminal import terminal_anchor
from repro.data.skyline import skyline_indices
from repro.geometry.hyperplane import preference_halfspace
from repro.geometry.polytope import UtilityPolytope
from repro.geometry.sphere import minimum_enclosing_sphere
from repro.geometry.vectors import regret_ratios


def halfspace_seeds():
    return st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=3)


def make_halfspaces(seeds, d):
    spaces = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        a, b = rng.uniform(0.01, 1.0, size=(2, d))
        if not np.allclose(a, b):
            spaces.append(preference_halfspace(a, b))
    return spaces


class TestIntersectionProperties:
    @given(halfspace_seeds())
    @settings(max_examples=25, deadline=None)
    def test_order_independent_geometry(self, seeds):
        """Intersecting in any order yields the same region."""
        d = 3
        spaces = make_halfspaces(seeds, d)
        forward = UtilityPolytope.simplex(d).with_halfspaces(spaces)
        backward = UtilityPolytope.simplex(d).with_halfspaces(spaces[::-1])
        assert forward.is_empty() == backward.is_empty()
        if not forward.is_empty():
            v1 = forward.vertices()
            v2 = backward.vertices()
            assert v1.shape == v2.shape
            s1 = v1[np.lexsort(v1.T)]
            s2 = v2[np.lexsort(v2.T)]
            np.testing.assert_allclose(s1, s2, atol=1e-6)

    @given(halfspace_seeds())
    @settings(max_examples=25, deadline=None)
    def test_chebyshev_radius_monotone(self, seeds):
        """Each intersection can only shrink the inscribed radius."""
        d = 4
        poly = UtilityPolytope.simplex(d)
        _, previous = poly.chebyshev_center()
        for halfspace in make_halfspaces(seeds, d):
            poly = poly.with_halfspace(halfspace)
            if poly.is_empty():
                return
            _, current = poly.chebyshev_center()
            assert current <= previous + 1e-9
            previous = current

    @given(halfspace_seeds())
    @settings(max_examples=20, deadline=None)
    def test_samples_inside_bounding_box(self, seeds):
        d = 3
        poly = UtilityPolytope.simplex(d).with_halfspaces(
            make_halfspaces(seeds, d)
        )
        if poly.is_empty():
            return
        e_min, e_max = poly.bounding_box()
        for point in poly.sample(20, rng=0):
            assert np.all(point >= e_min - 1e-6)
            assert np.all(point <= e_max + 1e-6)


class TestTerminalMonotonicity:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.05, max_value=0.2),
        st.floats(min_value=0.05, max_value=0.2),
    )
    @settings(max_examples=30, deadline=None)
    def test_terminal_monotone_in_epsilon(self, seed, eps_a, eps_b):
        """If R is terminal at eps, it is terminal at any larger eps."""
        small, large = sorted((eps_a, eps_b))
        rng = np.random.default_rng(seed)
        points = rng.uniform(0.05, 1.0, size=(8, 3))
        vertices = rng.dirichlet(np.ones(3), size=5)
        if terminal_anchor(points, vertices, small) is not None:
            assert terminal_anchor(points, vertices, large) is not None

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_terminal_anchor_certifies_regret(self, seed):
        """The returned anchor's regret is below eps at every vertex."""
        rng = np.random.default_rng(seed)
        points = rng.uniform(0.05, 1.0, size=(10, 3))
        vertices = rng.dirichlet(np.ones(3), size=4)
        epsilon = 0.15
        anchor = terminal_anchor(points, vertices, epsilon)
        if anchor is None:
            return
        regrets = regret_ratios(points, points[anchor], vertices)
        assert np.all(regrets <= epsilon + 1e-6)


class TestSkylineProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_skyline_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0.01, 1.0, size=(30, 3))
        first = points[skyline_indices(points)]
        second = first[skyline_indices(first)]
        assert first.shape == second.shape

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_skyline_preserves_top1_for_any_utility(self, seed):
        """Skyline filtering never changes the best utility value."""
        rng = np.random.default_rng(seed)
        points = rng.uniform(0.01, 1.0, size=(40, 3))
        sky = points[skyline_indices(points)]
        for _ in range(5):
            u = rng.dirichlet(np.ones(3))
            assert np.isclose(
                (points @ u).max(), (sky @ u).max(), atol=1e-12
            )


class TestSphereProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_meb_monotone_under_subset(self, seed):
        """The enclosing ball of a subset fits inside a slightly grown
        ball of the full set (approximation slack included)."""
        rng = np.random.default_rng(seed)
        points = rng.uniform(size=(15, 3))
        full = minimum_enclosing_sphere(points, rng=1)
        subset = minimum_enclosing_sphere(points[:7], rng=1)
        assert subset.radius <= full.radius * 1.25 + 1e-9


class TestVolumeSamplingConsistency:
    """Volume (exact) and hit-and-run sampling must agree."""

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_sample_fraction_tracks_volume_fraction(self, seed):
        d = 3
        spaces = make_halfspaces([seed], d)
        if not spaces:
            return
        whole = UtilityPolytope.simplex(d)
        part = whole.with_halfspaces(spaces)
        if part.is_empty():
            return
        fraction = part.volume() / whole.volume()
        if fraction < 0.05 or fraction > 0.95:
            return  # too extreme for a 400-sample estimate
        samples = whole.sample(400, rng=seed)
        inside = sum(part.contains(u, tol=1e-7) for u in samples)
        estimate = inside / 400
        assert abs(estimate - fraction) < 0.15
