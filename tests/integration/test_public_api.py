"""Contract tests for the top-level public API.

A downstream user should be able to rely on ``repro.__all__``: every
name resolves, the subpackage re-exports agree with their sources, and
the version string follows semantic-versioning shape.
"""

from __future__ import annotations

import re


import repro


class TestAllExports:
    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version_is_semver(self):
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)

    def test_core_entry_points_are_callable(self):
        for name in ("train_ea", "train_aa", "run_session", "regret_ratio",
                     "synthetic_dataset", "load_csv", "save_agent",
                     "load_agent", "evaluate_algorithm", "summarize"):
            assert callable(getattr(repro, name)), name

    def test_session_classes_share_protocol(self):
        from repro.core.session import InteractiveAlgorithm

        for name in ("EASession", "AASession", "UHRandomSession",
                     "UHSimplexSession", "SinglePassSession",
                     "UtilityApproxSession", "AdaptiveSession"):
            cls = getattr(repro, name)
            assert issubclass(cls, InteractiveAlgorithm), name

    def test_errors_have_common_base(self):
        from repro.errors import (
            ConfigurationError,
            DataError,
            EmptyRegionError,
            GeometryError,
            InteractionError,
            LPError,
            NotTrainedError,
            ReproError,
            VertexEnumerationError,
        )

        for exc in (
            GeometryError,
            EmptyRegionError,
            LPError,
            VertexEnumerationError,
            DataError,
            NotTrainedError,
            InteractionError,
            ConfigurationError,
        ):
            assert issubclass(exc, ReproError)


class TestSubpackageConsistency:
    def test_data_exports(self):
        import repro.data

        for name in repro.data.__all__:
            assert hasattr(repro.data, name)

    def test_rl_exports(self):
        import repro.rl

        for name in repro.rl.__all__:
            assert hasattr(repro.rl, name)

    def test_eval_exports(self):
        import repro.eval

        for name in repro.eval.__all__:
            assert hasattr(repro.eval, name)

    def test_core_exports(self):
        import repro.core

        for name in repro.core.__all__:
            assert hasattr(repro.core, name)

    def test_geometry_exports(self):
        import repro.geometry

        for name in repro.geometry.__all__:
            assert hasattr(repro.geometry, name)
