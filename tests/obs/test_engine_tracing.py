"""Tracing the serving hot path: visibility without perturbation.

Two contracts at once: with a tracer installed the engine (and the LP /
range / DQN layers under it) produce the promised spans and per-phase
breakdowns, and the traced run remains bit-identical to the untraced
one — observation must never change behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.utility import sample_training_utilities
from repro.obs.tracer import Tracer, use_tracer
from repro.serve import SessionEngine, SessionSpec
from repro.users import OracleUser


def _pairs(agent, dimension: int, n_users: int = 3):
    utilities = sample_training_utilities(dimension, n_users, rng=909)
    # Factories, not pre-built sessions: construction then happens inside
    # the engine's LP-cache context, so start-up solves shared across
    # sessions are memoised (and their hit/miss outcomes traced).
    return [
        SessionSpec(
            factory=lambda seed=seed: agent.new_session(rng=seed),
            user=OracleUser(u),
            seed=seed,
        )
        for seed, u in enumerate(utilities)
    ]


def _run(agent, dimension: int, tracer: Tracer | None):
    engine = SessionEngine()
    if tracer is None:
        results = engine.run(_pairs(agent, dimension))
    else:
        with use_tracer(tracer):
            results = engine.run(_pairs(agent, dimension))
    return engine, results


class TestTracedEngineRun:
    @pytest.fixture(scope="class")
    def traced(self, trained_ea_3d):
        tracer = Tracer()
        engine, results = _run(trained_ea_3d, 3, tracer)
        return tracer, engine, results

    def test_results_identical_with_and_without_tracer(
        self, trained_ea_3d, traced
    ):
        _, _, traced_results = traced
        _, plain_results = _run(trained_ea_3d, 3, None)
        assert len(plain_results) == len(traced_results)
        for plain, observed in zip(plain_results, traced_results):
            assert plain.recommendation_index == observed.recommendation_index
            np.testing.assert_array_equal(
                plain.recommendation, observed.recommendation
            )
            assert plain.rounds == observed.rounds
            assert plain.truncated == observed.truncated

    def test_engine_spans_present(self, traced):
        tracer, _, _ = traced
        names = set(tracer.aggregate())
        assert "engine.run" in names
        assert "engine.wave" in names
        assert "engine.slot" in names
        assert "engine.score" in names

    def test_lp_spans_split_by_kind_and_outcome(self, traced):
        tracer, engine, _ = traced
        lp_names = [
            name for name in tracer.aggregate() if name.startswith("lp.solve/")
        ]
        assert lp_names, "no LP solve spans recorded"
        # Names carry kind and cache outcome: lp.solve/<kind>/<outcome>.
        for name in lp_names:
            _, kind, outcome = name.split("/")
            assert kind
            assert outcome in ("hit", "miss", "uncached")
        # The engine's cache saw hits, and the spans agree.
        assert engine.last_metrics.lp_cache_hits > 0
        assert any(name.endswith("/hit") for name in lp_names)
        assert tracer.counters["lp.cache.hits"] == (
            engine.last_metrics.lp_cache_hits
        )

    def test_scoring_and_range_spans_present(self, traced):
        tracer, _, _ = traced
        names = set(tracer.aggregate())
        assert "dqn.q_values_many" in names
        assert "range.update" in names
        assert "range.clip" in names

    def test_engine_phase_breakdown_populated(self, traced):
        tracer, engine, _ = traced
        phases = engine.last_metrics.phase_seconds
        assert phases, "tracing was on but no phase breakdown recorded"
        assert set(phases) <= {"lp", "score", "range", "interact", "other"}
        assert all(seconds >= 0.0 for seconds in phases.values())
        assert "lp" in phases and "interact" in phases

    def test_per_session_phase_breakdown_populated(self, traced):
        _, engine, _ = traced
        per_session = engine.last_metrics.per_session
        assert per_session
        assert any(metrics.phase_seconds for metrics in per_session)
        for metrics in per_session:
            for phase, seconds in metrics.phase_seconds.items():
                assert seconds >= 0.0
                assert phase in {"lp", "score", "range", "interact", "other"}

    def test_summary_lines_include_breakdown(self, traced):
        _, engine, _ = traced
        lines = engine.last_metrics.summary_lines()
        assert any("phase breakdown (traced)" in line for line in lines)

    def test_tracer_detached_after_run(self, traced):
        _, engine, _ = traced
        assert engine._tracer is None


class TestUntracedEngineRun:
    def test_no_phase_breakdown_without_tracer(self, trained_ea_3d):
        engine, _ = _run(trained_ea_3d, 3, None)
        assert engine.last_metrics.phase_seconds == {}
        lines = engine.last_metrics.summary_lines()
        assert not any("phase breakdown" in line for line in lines)
