"""Exporters and BENCH snapshots: stable, machine-readable artifacts."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.export import (
    aggregate_report,
    chrome_trace,
    merge_aggregate_reports,
    summary_lines,
    write_aggregate,
    write_chrome_trace,
)
from repro.obs.snapshot import (
    SCHEMA_VERSION,
    load_snapshot,
    machine_info,
    snapshot_path,
    write_snapshot,
)
from repro.obs.tracer import Tracer


def _worked_tracer() -> Tracer:
    """A tracer with a small, known span tree and counters."""
    tracer = Tracer()
    with tracer.span("engine.run", sessions=2):
        with tracer.span("engine.wave", wave=1):
            with tracer.span("lp.solve/chebyshev/miss"):
                pass
            with tracer.span("lp.solve/chebyshev/hit"):
                pass
    tracer.counter("lp.cache.hits")
    return tracer


class TestAggregateReport:
    def test_structure(self):
        report = aggregate_report(_worked_tracer())
        assert set(report) == {
            "spans",
            "counters",
            "phase_seconds",
            "spans_recorded",
            "dropped_spans",
        }
        assert report["spans_recorded"] == 4
        assert report["dropped_spans"] == 0
        assert report["counters"] == {"lp.cache.hits": 1}
        assert report["spans"]["lp.solve/chebyshev/hit"]["calls"] == 1
        assert set(report["phase_seconds"]) == {"lp", "interact"}

    def test_span_keys_sorted(self):
        report = aggregate_report(_worked_tracer())
        assert list(report["spans"]) == sorted(report["spans"])


class TestMergeAggregateReports:
    """Cross-process folding of per-worker reports (dispatch obs)."""

    def test_sums_spans_counters_and_phases(self):
        left = aggregate_report(_worked_tracer())
        right = aggregate_report(_worked_tracer())
        merged = merge_aggregate_reports([left, right])
        assert merged["workers"] == 2
        assert merged["spans_recorded"] == 8
        assert merged["dropped_spans"] == 0
        assert merged["counters"] == {"lp.cache.hits": 2}
        hit = merged["spans"]["lp.solve/chebyshev/hit"]
        assert hit["calls"] == 2
        assert hit["total_seconds"] == pytest.approx(
            left["spans"]["lp.solve/chebyshev/hit"]["total_seconds"]
            + right["spans"]["lp.solve/chebyshev/hit"]["total_seconds"]
        )
        for phase in merged["phase_seconds"]:
            assert merged["phase_seconds"][phase] == pytest.approx(
                left["phase_seconds"].get(phase, 0.0)
                + right["phase_seconds"].get(phase, 0.0)
            )

    def test_disjoint_span_names_union(self):
        solo = Tracer()
        with solo.span("engine.run"):
            pass
        merged = merge_aggregate_reports(
            [aggregate_report(_worked_tracer()), aggregate_report(solo)]
        )
        assert "engine.run" in merged["spans"]
        assert "lp.solve/chebyshev/hit" in merged["spans"]
        assert list(merged["spans"]) == sorted(merged["spans"])

    def test_empty_input_merges_to_empty_report(self):
        merged = merge_aggregate_reports([])
        assert merged == {
            "spans": {},
            "counters": {},
            "phase_seconds": {},
            "spans_recorded": 0,
            "dropped_spans": 0,
            "workers": 0,
        }

    def test_accepts_generators(self):
        reports = (
            aggregate_report(_worked_tracer()) for _ in range(3)
        )
        assert merge_aggregate_reports(reports)["workers"] == 3


class TestChromeTrace:
    def test_event_structure(self):
        trace = chrome_trace(_worked_tracer())
        events = trace["traceEvents"]
        # One metadata event plus one complete event per recorded span.
        assert events[0]["ph"] == "M"
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == 4
        names = [event["name"] for event in complete]
        # Depth-first: parents precede their children.
        assert names[0] == "engine.run"
        assert names[1] == "engine.wave"
        for event in complete:
            assert event["dur"] >= 0.0
            assert event["ts"] >= 0.0
        tagged = complete[0]
        assert tagged["args"] == {"sessions": "2"}
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"]["spans_recorded"] == 4

    def test_write_is_valid_json(self, tmp_path):
        path = write_chrome_trace(_worked_tracer(), tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert "traceEvents" in data

    def test_write_aggregate(self, tmp_path):
        path = write_aggregate(_worked_tracer(), tmp_path / "agg.json")
        data = json.loads(path.read_text())
        assert data["counters"] == {"lp.cache.hits": 1}


class TestSummaryLines:
    def test_empty_tracer(self):
        assert summary_lines(Tracer()) == ["no spans recorded"]

    def test_rows_and_header(self):
        lines = summary_lines(_worked_tracer(), top=2)
        assert lines[0].startswith("span")
        assert len(lines) == 3  # header + top 2


class TestSnapshots:
    def test_directory_target_names_file(self, tmp_path):
        assert (
            snapshot_path(tmp_path, "serve")
            == tmp_path / "BENCH_serve.json"
        )

    def test_explicit_json_path_used_as_is(self, tmp_path):
        target = tmp_path / "custom.json"
        assert snapshot_path(target, "serve") == target

    def test_roundtrip(self, tmp_path):
        written = write_snapshot(
            tmp_path,
            "unit",
            config={"sessions": 4},
            timings={"wall_seconds": 1.5},
            counters={"rounds": np.int64(25), "rate": np.float64(0.25)},
            notes="hello",
        )
        assert written.name == "BENCH_unit.json"
        data = load_snapshot(written)
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["name"] == "unit"
        assert data["config"] == {"sessions": 4}
        # numpy scalars land as plain JSON numbers.
        assert data["counters"] == {"rounds": 25, "rate": 0.25}
        assert data["notes"] == "hello"
        assert "machine" in data and "created_at" in data

    def test_keys_are_sorted_in_file(self, tmp_path):
        written = write_snapshot(
            tmp_path, "sorted", counters={"b": 1, "a": 2}
        )
        text = written.read_text()
        assert text.index('"a"') < text.index('"b"')
        assert text.endswith("\n")

    def test_rejects_future_schema(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema_version": SCHEMA_VERSION + 1}))
        with pytest.raises(ValueError, match="schema_version"):
            load_snapshot(path)

    def test_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a BENCH snapshot"):
            load_snapshot(path)

    def test_machine_info_fields(self):
        info = machine_info()
        assert set(info) >= {"platform", "python", "numpy", "scipy"}
