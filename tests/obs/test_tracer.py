"""Tracer semantics: free when off, correct tree/aggregates when on.

The disabled path is the load-bearing one — tracing ships enabled in no
default configuration, so the hot loops (engine waves, LP solves, DQN
scoring) must pay nothing beyond a single ContextVar read.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.tracer import (
    NULL_SPAN,
    OTHER_PHASE,
    Tracer,
    active_tracer,
    counter,
    phase_of,
    span,
    use_tracer,
)


class TestDisabledByDefault:
    """With no tracer installed, instrumentation is inert and allocation-free."""

    def test_no_tracer_installed(self):
        assert active_tracer() is None

    def test_module_span_returns_shared_singleton(self):
        # Identity, not just equality: the disabled path must not
        # allocate a fresh object per call.
        first = span("engine.wave")
        second = span("lp.solve/chebyshev/miss", kind="chebyshev")
        assert first is NULL_SPAN
        assert second is NULL_SPAN
        with first:
            pass  # usable as a context manager

    def test_module_counter_is_noop(self):
        counter("lp.cache.hits")  # must not raise, must not record anywhere
        assert active_tracer() is None

    def test_uninstalled_tracer_records_nothing(self):
        tracer = Tracer()
        with span("engine.wave"):
            pass
        counter("anything")
        assert tracer.spans_recorded == 0
        assert tracer.counters == {}
        assert tracer.aggregate() == {}
        assert tracer.phase_seconds() == {}

    def test_engine_hot_loop_records_nothing_without_install(
        self, trained_ea_3d
    ):
        # The full serving hot path — waves, slot ops, LP solves, range
        # updates, Q-scoring — runs with a tracer constructed but never
        # installed: nothing may reach it.
        import numpy as np

        from repro.serve import SessionEngine
        from repro.users import OracleUser

        tracer = Tracer()
        engine = SessionEngine()
        users = [
            OracleUser(u)
            for u in np.random.default_rng(7).dirichlet(np.ones(3), size=2)
        ]
        from repro.serve import SessionSpec

        engine.run(
            [
                SessionSpec(
                    factory=lambda seed=seed: trained_ea_3d.new_session(
                        rng=seed
                    ),
                    user=user,
                )
                for seed, user in enumerate(users)
            ]
        )
        assert tracer.spans_recorded == 0
        assert tracer.counters == {}
        assert engine.last_metrics.phase_seconds == {}
        for per_session in engine.last_metrics.per_session:
            assert per_session.phase_seconds == {}


class TestPhaseMapping:
    def test_known_prefixes(self):
        assert phase_of("lp.solve/chebyshev/hit") == "lp"
        assert phase_of("dqn.q_values_many") == "score"
        assert phase_of("range.clip") == "range"
        assert phase_of("engine.wave") == "interact"
        assert phase_of("train.episode") == "train"

    def test_unknown_prefix_falls_back(self):
        assert phase_of("custom.thing") == OTHER_PHASE
        assert phase_of("noprefix") == OTHER_PHASE


class TestSpanTree:
    def test_nesting_and_ordering(self):
        tracer = Tracer()
        with tracer.span("engine.run"):
            with tracer.span("engine.wave", wave=1):
                with tracer.span("lp.solve/chebyshev/miss"):
                    pass
            with tracer.span("engine.wave", wave=2):
                pass
        assert len(tracer.roots) == 1
        run = tracer.roots[0]
        assert run.name == "engine.run"
        assert [child.name for child in run.children] == [
            "engine.wave",
            "engine.wave",
        ]
        assert run.children[0].tags == {"wave": 1}
        assert run.children[0].children[0].name == "lp.solve/chebyshev/miss"
        assert run.children[1].children == []
        assert tracer.spans_recorded == 4

    def test_durations_contain_children(self):
        tracer = Tracer()
        with tracer.span("engine.run"):
            with tracer.span("lp.solve/support/miss"):
                time.sleep(0.002)
        run = tracer.roots[0]
        child = run.children[0]
        assert child.duration > 0.0
        assert run.duration >= child.duration
        assert child.start >= run.start

    def test_self_time_excludes_children(self):
        tracer = Tracer()
        with tracer.span("range.update"):
            with tracer.span("lp.solve/redundancy/miss"):
                time.sleep(0.003)
        aggregates = tracer.aggregate()
        update = aggregates["range.update"]
        solve = aggregates["lp.solve/redundancy/miss"]
        assert update.total_seconds >= solve.total_seconds
        assert update.self_seconds == pytest.approx(
            update.total_seconds - solve.total_seconds
        )
        # And the phase totals see the same disjoint attribution.
        phases = tracer.phase_seconds()
        assert phases["range"] == pytest.approx(update.self_seconds)
        assert phases["lp"] == pytest.approx(solve.self_seconds)

    def test_aggregate_is_name_sorted_and_counts_calls(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("b.second"):
                pass
        with tracer.span("a.first"):
            pass
        aggregates = tracer.aggregate()
        assert list(aggregates) == ["a.first", "b.second"]
        assert aggregates["b.second"].calls == 3

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("engine.slot"):
                raise RuntimeError("boom")
        assert tracer.spans_recorded == 1
        assert tracer.aggregate()["engine.slot"].calls == 1


class TestCountersAndSnapshots:
    def test_counter_accumulates(self):
        tracer = Tracer()
        tracer.counter("lp.cache.hits")
        tracer.counter("lp.cache.hits", 2)
        assert tracer.counters == {"lp.cache.hits": 3}

    def test_phases_since_returns_only_growth(self):
        tracer = Tracer()
        with tracer.span("lp.solve/chebyshev/miss"):
            time.sleep(0.001)
        before = tracer.phase_snapshot()
        with tracer.span("range.clip"):
            time.sleep(0.001)
        delta = tracer.phases_since(before)
        assert set(delta) == {"range"}
        assert delta["range"] > 0.0


class TestMaxSpansCap:
    def test_aggregates_exact_past_cap(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("engine.slot"):
                pass
        assert tracer.spans_recorded == 2
        assert tracer.dropped_spans == 3
        # Timing and counting stay exact even for dropped spans.
        assert tracer.aggregate()["engine.slot"].calls == 5

    def test_rejects_non_positive_cap(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestUseTracer:
    def test_installs_and_restores(self):
        tracer = Tracer()
        assert active_tracer() is None
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert active_tracer() is tracer
            assert span("engine.wave") is not NULL_SPAN
        assert active_tracer() is None

    def test_nesting_innermost_wins(self):
        outer, inner = Tracer(), Tracer()
        with use_tracer(outer):
            with use_tracer(inner):
                assert active_tracer() is inner
            assert active_tracer() is outer

    def test_threads_do_not_stomp_each_other(self):
        # Mirrors tests/geometry/test_lp.py::TestCacheContextIsolation —
        # the tracer's installation is context-local for the same
        # reason the LP cache's is.
        tracers = [Tracer(), Tracer()]
        barrier = threading.Barrier(2)
        errors: list[Exception] = []

        def worker(i: int) -> None:
            try:
                with use_tracer(tracers[i]):
                    barrier.wait(timeout=10)
                    # Both threads are inside use_tracer now; each must
                    # still see only its own tracer.
                    assert active_tracer() is tracers[i]
                    with span(f"thread.{i}"):
                        pass
                    barrier.wait(timeout=10)
                    assert active_tracer() is tracers[i]
                assert active_tracer() is None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        for i, tracer in enumerate(tracers):
            # Each thread's span landed in its own tracer only.
            assert tracer.spans_recorded == 1
            assert list(tracer.aggregate()) == [f"thread.{i}"]
        assert active_tracer() is None
