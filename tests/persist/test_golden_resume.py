"""Golden resume suite: interrupt/resume is bit-identical, every family.

For each (family, user kind, seed) case a *reference* session runs
uninterrupted while an identically-seeded *replay* session is stopped at
round ``k``, checkpointed through a file-backed store (real npz bytes on
disk, as a crashed process would leave behind), restored, and driven to
completion.  The resumed session must produce exactly the reference's
remaining transcript and recommendation — covering all five baseline
families and both RL families, truthful and noisy users.

The RL cases restore against an agent *reloaded from disk* rather than
the in-memory fixture, simulating a fresh process following
``snapshot.agent_ref``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.utility import sample_training_utilities
from repro.persist import FileSessionStore, capture_session, restore_session
from repro.registry import make_session
from repro.rl.serialization import load_agent, save_agent
from repro.users import NoisyUser, OracleUser

BASELINES = (
    "uh-random",
    "uh-simplex",
    "single-pass",
    "utility-approx",
    "adaptive",
)
BASELINE_SEEDS = (0, 1, 2, 3)
RL_SEEDS = (0, 1, 2)
USER_KINDS = ("oracle", "noisy")
EPSILON = 0.1
ROUND_CAP = 40
CHECKPOINT_AT = 2


def _make_user(kind: str, dimension: int, seed: int):
    utility = sample_training_utilities(dimension, 1, rng=1_000 + seed)[0]
    if kind == "oracle":
        return OracleUser(utility)
    return NoisyUser(utility, error_rate=0.2, rng=2_000 + seed)


def _drive(session, user, *, rounds=None, cap=ROUND_CAP):
    """Answer up to ``rounds`` questions; returns (round, i, j, answer)s."""
    transcript = []
    while not session.finished and session.rounds < cap:
        if rounds is not None and len(transcript) >= rounds:
            break
        question = session.pending_question or session.next_question()
        answer = bool(user.prefers(question.p_i, question.p_j))
        session.observe(answer)
        transcript.append(
            (session.rounds, question.index_i, question.index_j, answer)
        )
    return transcript


def _assert_identical_resume(make_fresh, user_kind, seed, tmp_path, **restore):
    dimension = restore.get("dimension", 3)
    reference = make_fresh(seed)
    reference_log = _drive(reference, _make_user(user_kind, dimension, seed))
    reference_rec = reference.recommend()

    # Replay: same construction, stop at round k, checkpoint to disk.
    replay = make_fresh(seed)
    user = _make_user(user_kind, dimension, seed)
    head = _drive(replay, user, rounds=CHECKPOINT_AT)
    store = FileSessionStore(tmp_path / "store")
    store.put(
        capture_session(
            replay, session_id=f"golden-{seed}", agent_ref=restore.get("ref")
        )
    )
    del replay  # the resumed copy must not share anything live

    snapshot = store.get(f"golden-{seed}")
    resumed = restore_session(
        snapshot,
        agent=restore.get("agent"),
    )
    tail = _drive(resumed, user)

    assert head + tail == reference_log, (
        f"resumed transcript diverged after round {CHECKPOINT_AT}"
    )
    assert resumed.rounds == reference.rounds
    assert resumed.finished == reference.finished
    assert resumed.recommend() == reference_rec
    resumed_point = np.asarray(
        resumed.dataset.points[resumed.recommend()], dtype=float
    )
    reference_point = np.asarray(
        reference.dataset.points[reference_rec], dtype=float
    )
    np.testing.assert_array_equal(resumed_point, reference_point)


@pytest.mark.parametrize("seed", BASELINE_SEEDS)
@pytest.mark.parametrize("user_kind", USER_KINDS)
@pytest.mark.parametrize("family", BASELINES)
def test_baseline_resume_is_bit_identical(
    family, user_kind, seed, small_anti_3d, tmp_path
):
    def make_fresh(seed):
        return make_session(family, small_anti_3d, EPSILON, rng=100 + seed)

    _assert_identical_resume(make_fresh, user_kind, seed, tmp_path)


@pytest.fixture(scope="module")
def reloaded_agents(trained_ea_3d, trained_aa_3d, tmp_path_factory):
    """Agents saved and reloaded from disk, as a fresh process would."""
    root = tmp_path_factory.mktemp("agents")
    out = {}
    for name, agent in (("ea", trained_ea_3d), ("aa", trained_aa_3d)):
        path = save_agent(agent, root / f"{name}.npz")
        out[name] = (str(path), load_agent(path))
    return out


@pytest.mark.parametrize("seed", RL_SEEDS)
@pytest.mark.parametrize("user_kind", USER_KINDS)
@pytest.mark.parametrize("family", ("ea", "aa"))
def test_rl_resume_is_bit_identical(
    family,
    user_kind,
    seed,
    trained_ea_3d,
    trained_aa_3d,
    reloaded_agents,
    tmp_path,
):
    trained = {"ea": trained_ea_3d, "aa": trained_aa_3d}[family]
    ref, fresh_agent = reloaded_agents[family]

    def make_fresh(seed):
        return trained.new_session(rng=100 + seed)

    _assert_identical_resume(
        make_fresh,
        user_kind,
        seed,
        tmp_path,
        agent=fresh_agent,
        ref=ref,
    )


def test_agent_ref_travels_with_the_snapshot(
    trained_ea_3d, reloaded_agents, tmp_path
):
    ref, _ = reloaded_agents["ea"]
    session = trained_ea_3d.new_session(rng=1)
    store = FileSessionStore(tmp_path / "store")
    store.put(capture_session(session, session_id="with-ref", agent_ref=ref))
    snapshot = store.get("with-ref")
    assert snapshot.agent_ref == ref
    # The recorded reference is sufficient to reload the right agent.
    resumed = restore_session(snapshot, agent=load_agent(snapshot.agent_ref))
    assert resumed.rounds == session.rounds
