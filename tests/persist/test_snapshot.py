"""Unit tests for the snapshot codec and capture/restore logic."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core.session import TranscriptEntry
from repro.data import synthetic_dataset
from repro.data.utility import sample_training_utilities
from repro.errors import PersistenceError
from repro.persist import (
    SessionSnapshot,
    capture_session,
    load_snapshot,
    restore_session,
    save_snapshot,
    snapshot_from_bytes,
    snapshot_to_bytes,
)
from repro.registry import make_session
from repro.users import OracleUser


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset("anti", 200, 3, rng=7)


@pytest.fixture(scope="module")
def utility():
    return sample_training_utilities(3, 1, rng=11)[0]


def _drive(session, user, rounds):
    """Answer ``rounds`` questions; returns the transcript entries."""
    transcript = []
    for _ in range(rounds):
        if session.finished:
            break
        question = session.next_question()
        answer = bool(user.prefers(question.p_i, question.p_j))
        session.observe(answer)
        transcript.append(
            TranscriptEntry(
                round_number=session.rounds,
                index_i=question.index_i,
                index_j=question.index_j,
                prefers_first=answer,
            )
        )
    return transcript


def _mid_session(dataset, utility, family="uh-random", rounds=2):
    session = make_session(family, dataset, 0.1, rng=42)
    transcript = _drive(session, OracleUser(utility), rounds)
    return session, transcript


class TestByteCodec:
    def test_round_trip_preserves_identity(self, dataset, utility):
        session, transcript = _mid_session(dataset, utility)
        snapshot = capture_session(
            session, session_id="t-1", transcript=tuple(transcript)
        )
        loaded = snapshot_from_bytes(snapshot_to_bytes(snapshot))
        assert loaded.session_id == "t-1"
        assert loaded.family == "uh-random"
        assert loaded.epsilon == pytest.approx(0.1)
        assert loaded.rounds == snapshot.rounds
        assert loaded.transcript == tuple(transcript)
        assert loaded.agent_ref is None
        assert loaded.dataset_meta == snapshot.dataset_meta

    def test_state_arrays_are_bit_exact(self, dataset, utility):
        session, _ = _mid_session(dataset, utility)
        snapshot = capture_session(session, session_id="t-2")
        loaded = snapshot_from_bytes(snapshot_to_bytes(snapshot))
        resumed = restore_session(loaded)
        original_state = session.get_state()
        resumed_state = resumed.get_state()

        def assert_equal(a, b):
            assert type(a) is type(b) or (
                isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
            )
            if isinstance(a, np.ndarray):
                assert a.dtype == b.dtype
                np.testing.assert_array_equal(a, b)
            elif isinstance(a, dict):
                assert a.keys() == b.keys()
                for key in a:
                    assert_equal(a[key], b[key])
            elif isinstance(a, (list, tuple)):
                assert len(a) == len(b)
                for x, y in zip(a, b):
                    assert_equal(x, y)
            else:
                assert a == b

        assert_equal(original_state, resumed_state)

    def test_file_round_trip_appends_npz(self, dataset, utility, tmp_path):
        session, _ = _mid_session(dataset, utility)
        snapshot = capture_session(session, session_id="t-3")
        written = save_snapshot(snapshot, tmp_path / "snap")
        assert str(written).endswith(".npz")
        loaded = load_snapshot(written)
        assert loaded.session_id == "t-3"
        assert loaded.rounds == snapshot.rounds

    def test_binary_io_round_trip(self, dataset, utility):
        session, _ = _mid_session(dataset, utility)
        snapshot = capture_session(session, session_id="t-4")
        buffer = io.BytesIO()
        save_snapshot(snapshot, buffer)
        buffer.seek(0)
        assert load_snapshot(buffer).session_id == "t-4"


def _tamper_meta(blob: bytes, **overrides) -> bytes:
    """Rewrite the ``meta`` JSON inside an encoded snapshot."""
    with np.load(io.BytesIO(blob), allow_pickle=False) as archive:
        entries = {name: archive[name] for name in archive.files}
    meta = json.loads(str(entries["meta"][()]))
    meta.update(overrides)
    entries["meta"] = np.array(json.dumps(meta))
    out = io.BytesIO()
    np.savez(out, **entries)
    return out.getvalue()


class TestFormatGates:
    def test_future_version_is_rejected(self, dataset, utility):
        session, _ = _mid_session(dataset, utility)
        blob = snapshot_to_bytes(capture_session(session, session_id="v"))
        bad = _tamper_meta(blob, format_version=999)
        with pytest.raises(PersistenceError, match="version"):
            snapshot_from_bytes(bad)

    def test_wrong_kind_is_rejected(self, dataset, utility):
        session, _ = _mid_session(dataset, utility)
        blob = snapshot_to_bytes(capture_session(session, session_id="k"))
        bad = _tamper_meta(blob, kind="not-a-snapshot")
        with pytest.raises(PersistenceError):
            snapshot_from_bytes(bad)

    def test_garbage_bytes_are_rejected(self):
        with pytest.raises(PersistenceError):
            snapshot_from_bytes(b"definitely not an npz archive")


class TestRestoreGuards:
    def test_rl_restore_requires_agent(self):
        snapshot = SessionSnapshot(
            session_id="rl-1",
            family="ea",
            epsilon=0.1,
            rounds=0,
            state={},
            agent_ref="agents/ea.npz",
            dataset_meta={"name": "x", "n": 10, "dimension": 3},
        )
        with pytest.raises(PersistenceError, match="agent"):
            restore_session(snapshot)

    def test_dataset_shape_mismatch_is_rejected(self, dataset, utility):
        session, _ = _mid_session(dataset, utility)
        snapshot = capture_session(session, session_id="m")
        other = synthetic_dataset("anti", 120, 3, rng=9)
        with pytest.raises(PersistenceError, match="does not match"):
            restore_session(snapshot, dataset=other)


class TestMidRoundCapture:
    def test_pending_question_round_trips(self, dataset, utility):
        session, _ = _mid_session(dataset, utility, rounds=2)
        asked = session.next_question()  # ask, do not answer
        snapshot = snapshot_from_bytes(
            snapshot_to_bytes(capture_session(session, session_id="p"))
        )
        resumed = restore_session(snapshot)
        pending = resumed.pending_question
        assert pending is not None
        assert (pending.index_i, pending.index_j) == (
            asked.index_i,
            asked.index_j,
        )
        # Both copies answer the same question and stay in lockstep.
        user = OracleUser(utility)
        answer = bool(user.prefers(asked.p_i, asked.p_j))
        session.observe(answer)
        resumed.observe(answer)
        assert resumed.rounds == session.rounds
        assert resumed.finished == session.finished
