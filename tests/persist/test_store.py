"""SessionStore implementations: both run the same byte codec."""

from __future__ import annotations

import pytest

from repro.data import synthetic_dataset
from repro.data.utility import sample_training_utilities
from repro.errors import PersistenceError
from repro.persist import (
    FileSessionStore,
    MemorySessionStore,
    capture_session,
)
from repro.registry import make_session
from repro.users import OracleUser


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset("anti", 150, 3, rng=3)


def _snapshot(dataset, session_id, rounds=1):
    session = make_session("uh-random", dataset, 0.1, rng=5)
    user = OracleUser(sample_training_utilities(3, 1, rng=17)[0])
    for _ in range(rounds):
        question = session.next_question()
        session.observe(user.prefers(question.p_i, question.p_j))
    return capture_session(session, session_id=session_id)


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemorySessionStore()
    return FileSessionStore(tmp_path / "sessions")


class TestStoreContract:
    def test_put_get_round_trip(self, store, dataset):
        snapshot = _snapshot(dataset, "alpha")
        store.put(snapshot)
        loaded = store.get("alpha")
        assert loaded.session_id == "alpha"
        assert loaded.rounds == snapshot.rounds
        assert loaded.transcript == snapshot.transcript

    def test_put_is_upsert(self, store, dataset):
        store.put(_snapshot(dataset, "alpha", rounds=1))
        later = _snapshot(dataset, "alpha", rounds=3)
        store.put(later)
        assert store.get("alpha").rounds == later.rounds
        assert store.ids() == ("alpha",)

    def test_ids_sorted_and_contains(self, store, dataset):
        for name in ("b", "a", "c"):
            store.put(_snapshot(dataset, name))
        assert store.ids() == ("a", "b", "c")
        assert "b" in store
        assert "zzz" not in store

    def test_missing_id_raises(self, store):
        with pytest.raises(PersistenceError, match="no stored session"):
            store.get("missing")

    def test_delete_is_idempotent(self, store, dataset):
        store.put(_snapshot(dataset, "gone"))
        store.delete("gone")
        store.delete("gone")
        assert store.ids() == ()

    @pytest.mark.parametrize(
        "bad_id",
        ["", "a/b", "../escape", "a" * 129, "sp ace", ".", ".."],
    )
    def test_invalid_ids_are_rejected(self, store, dataset, bad_id):
        snapshot = _snapshot(dataset, "ok")
        object.__setattr__(snapshot, "session_id", bad_id)
        with pytest.raises(PersistenceError, match="invalid session id"):
            store.put(snapshot)


class TestFileStore:
    def test_survives_reopen(self, tmp_path, dataset):
        root = tmp_path / "sessions"
        FileSessionStore(root).put(_snapshot(dataset, "persist-me"))
        reopened = FileSessionStore(root)
        assert reopened.get("persist-me").session_id == "persist-me"

    def test_one_npz_per_session(self, tmp_path, dataset):
        root = tmp_path / "sessions"
        store = FileSessionStore(root)
        store.put(_snapshot(dataset, "one"))
        store.put(_snapshot(dataset, "two"))
        assert sorted(p.name for p in root.glob("*")) == [
            "one.npz",
            "two.npz",
        ]

    def test_traversal_cannot_escape_root(self, tmp_path, dataset):
        store = FileSessionStore(tmp_path / "sessions")
        with pytest.raises(PersistenceError):
            store.get("../../etc/passwd")


class TestConcurrentWriters:
    """Multi-writer safety: per-writer O_EXCL temp names, atomic publish."""

    def test_concurrent_puts_of_one_id_never_tear(self, tmp_path, dataset):
        import threading

        root = tmp_path / "sessions"
        snapshots = [
            _snapshot(dataset, "contended", rounds=rounds)
            for rounds in (1, 2, 3, 4)
        ]
        errors: list[BaseException] = []

        def hammer(snapshot):
            # Each thread gets its own store handle, as two processes
            # pointed at one directory would.
            store = FileSessionStore(root)
            try:
                for _ in range(10):
                    store.put(snapshot)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(s,)) for s in snapshots
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # The survivor is one writer's *complete* snapshot, never a mix.
        loaded = FileSessionStore(root).get("contended")
        assert loaded.rounds in {1, 2, 3, 4}
        reference = snapshots[loaded.rounds - 1]
        assert loaded.transcript == reference.transcript

    def test_staging_names_cannot_collide_across_writers(
        self, tmp_path, dataset, monkeypatch
    ):
        import os as os_module

        import repro.persist.store as store_module

        # Two writers racing on one id must stage under distinct names:
        # a shared "<id>.npz.tmp" would let writer B's bytes land in the
        # file writer A is about to publish.
        staged: list[str] = []
        real_open = os_module.open

        def recording_open(path, flags, *args, **kwargs):
            if str(path).endswith(".tmp"):
                staged.append(str(path))
                assert flags & os_module.O_EXCL
            return real_open(path, flags, *args, **kwargs)

        monkeypatch.setattr(store_module.os, "open", recording_open)
        store = FileSessionStore(tmp_path / "sessions")
        store.put(_snapshot(dataset, "alpha"))
        store.put(_snapshot(dataset, "alpha"))
        assert len(staged) == 2
        assert staged[0] != staged[1]
        assert all(str(os_module.getpid()) in name for name in staged)

    def test_no_temp_litter_and_ids_ignore_staging_files(
        self, tmp_path, dataset
    ):
        root = tmp_path / "sessions"
        store = FileSessionStore(root)
        store.put(_snapshot(dataset, "clean"))
        leftovers = [p.name for p in root.glob("*.tmp")]
        assert leftovers == []
        # A stray .tmp from a crashed writer is invisible to ids().
        (root / "clean.npz.999.0.tmp").write_bytes(b"partial")
        assert store.ids() == ("clean",)
