"""Golden resume for the user-model zoo: the *human* round-trips too.

The classic golden suite proves the algorithm resumes bit-identically;
these cases additionally checkpoint the simulated user (drift RNG,
fatigue counter, persona stream, abstention count) through
``capture_session(user=...)`` and restore it into a freshly-constructed
user, requiring the joint (algorithm, user) system to reproduce the
uninterrupted run's remaining transcript exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.session import ask_user
from repro.data.utility import sample_training_utilities
from repro.persist import FileSessionStore, capture_session, restore_session
from repro.registry import make_session
from repro.serve.engine import SessionEngine
from repro.users import make_user

ZOO = ("noisy", "persona", "fatigue", "drifting", "abstaining")
EPSILON = 0.1
ROUND_CAP = 40
CHECKPOINT_AT = 2


def _fresh_user(model: str, seed: int):
    utility = sample_training_utilities(3, 1, rng=1_000 + seed)[0]
    return make_user(model, utility, rng=2_000 + seed, noise=0.3)


def _drive(session, user, *, rounds=None, cap=ROUND_CAP):
    """Drive through ``ask_user`` (exercising abstentions); log each round."""
    transcript = []
    while not session.finished and session.rounds < cap:
        if rounds is not None and len(transcript) >= rounds:
            break
        question = session.pending_question or session.next_question()
        answer, abstained = ask_user(user, question)
        session.abstentions += abstained
        session.observe(answer)
        transcript.append(
            (session.rounds, question.index_i, question.index_j, answer)
        )
    return transcript


@pytest.mark.parametrize("seed", (0, 1))
@pytest.mark.parametrize("model", ZOO)
@pytest.mark.parametrize("family", ("uh-random", "uh-simplex"))
def test_zoo_resume_is_bit_identical(
    family, model, seed, small_anti_3d, tmp_path
):
    reference = make_session(family, small_anti_3d, EPSILON, rng=100 + seed)
    reference_log = _drive(reference, _fresh_user(model, seed))
    reference_rec = reference.recommend()

    replay = make_session(family, small_anti_3d, EPSILON, rng=100 + seed)
    user = _fresh_user(model, seed)
    head = _drive(replay, user, rounds=CHECKPOINT_AT)
    store = FileSessionStore(tmp_path / "store")
    store.put(capture_session(replay, session_id="zoo", user=user))
    del replay, user  # the resumed pair must not share anything live

    snapshot = store.get("zoo")
    assert snapshot.user_state is not None
    resumed = restore_session(snapshot)
    # A fresh, identically-constructed user restored to mid-stream state.
    resumed_user = _fresh_user(model, seed)
    from repro.users import restore_user_state

    restore_user_state(resumed_user, snapshot.user_state)
    tail = _drive(resumed, resumed_user)

    assert head + tail == reference_log
    assert resumed.rounds == reference.rounds
    assert resumed.recommend() == reference_rec


@pytest.mark.parametrize("model", ("drifting", "abstaining"))
def test_resumed_spec_restores_the_user_through_the_engine(
    model, small_anti_3d, tmp_path
):
    """End to end through the serving engine: checkpoint a mid-flight
    (session, user) pair, rebuild both via resumed_spec, and finish on
    the engine — matching the uninterrupted engine run exactly."""
    from repro.persist import resumed_spec
    from repro.serve.spec import SessionSpec

    seed = 4

    def spec(user):
        return SessionSpec(
            factory=lambda: make_session(
                "uh-random", small_anti_3d, EPSILON, rng=100 + seed
            ),
            user=user,
        )

    engine = SessionEngine(max_rounds=ROUND_CAP)
    [reference] = engine.run([spec(_fresh_user(model, seed))])

    interrupted = make_session(
        "uh-random", small_anti_3d, EPSILON, rng=100 + seed
    )
    user = _fresh_user(model, seed)
    _drive(interrupted, user, rounds=CHECKPOINT_AT)
    store = FileSessionStore(tmp_path / "store")
    store.put(capture_session(interrupted, session_id="mid", user=user))

    snapshot = store.get("mid")
    resumed_user = _fresh_user(model, seed)
    resumed = resumed_spec(snapshot, resumed_user)
    [finished] = SessionEngine(max_rounds=ROUND_CAP).run([resumed])

    assert finished.recommendation_index == reference.recommendation_index
    assert finished.status == reference.status
    np.testing.assert_array_equal(
        finished.recommendation, reference.recommendation
    )


def test_abstention_counter_round_trips(small_anti_3d, tmp_path):
    session = make_session("uh-random", small_anti_3d, EPSILON, rng=7)
    user = _fresh_user("abstaining", 0)
    _drive(session, user, rounds=6)
    store = FileSessionStore(tmp_path / "store")
    store.put(capture_session(session, session_id="abst", user=user))
    snapshot = store.get("abst")
    resumed = restore_session(snapshot)
    assert resumed.abstentions == session.abstentions
    assert snapshot.user_state["abstentions"] == user.abstentions
