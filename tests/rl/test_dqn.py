"""Tests for the DQN agent."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rl.dqn import DQNAgent, DQNConfig
from repro.rl.replay import Transition
from repro.rl.schedules import ConstantSchedule


def terminal_transition(state, action, reward):
    return Transition(
        state=state,
        action=action,
        reward=reward,
        next_state=state,
        next_actions=None,
        terminal=True,
    )


class TestConfig:
    def test_paper_defaults(self):
        config = DQNConfig()
        assert config.hidden_sizes == (64,)
        assert config.activation == "selu"
        assert config.learning_rate == pytest.approx(0.003)
        assert config.discount == pytest.approx(0.8)
        assert config.batch_size == 64
        assert config.replay_capacity == 5_000
        assert config.target_sync_every == 20
        assert config.exploration.value(0) == pytest.approx(0.9)

    def test_rejects_bad_discount(self):
        with pytest.raises(ValueError):
            DQNConfig(discount=1.0)

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            DQNConfig(batch_size=0)

    def test_rejects_bad_optimizer(self):
        with pytest.raises(ValueError):
            DQNConfig(optimizer="rmsprop")


class TestQValues:
    def test_shape(self):
        agent = DQNAgent(state_dim=3, action_dim=2, rng=0)
        values = agent.q_values(np.zeros(3), np.zeros((5, 2)))
        assert values.shape == (5,)

    def test_wrong_action_dim_rejected(self):
        agent = DQNAgent(state_dim=3, action_dim=2, rng=0)
        with pytest.raises(ValueError):
            agent.q_values(np.zeros(3), np.zeros((5, 3)))

    def test_target_network_initially_equal(self):
        agent = DQNAgent(state_dim=2, action_dim=1, rng=0)
        state = np.array([0.1, 0.2])
        actions = np.array([[0.5], [0.7]])
        np.testing.assert_allclose(
            agent.q_values(state, actions),
            agent.q_values(state, actions, use_target=True),
        )


class TestSelectAction:
    def test_greedy_picks_argmax(self):
        agent = DQNAgent(state_dim=1, action_dim=1, rng=0)
        state = np.array([0.0])
        actions = np.array([[0.0], [1.0]])
        greedy = agent.select_action(state, actions, explore=False)
        values = agent.q_values(state, actions)
        assert greedy == int(np.argmax(values))

    def test_full_exploration_is_uniform(self):
        config = DQNConfig(exploration=ConstantSchedule(1.0))
        agent = DQNAgent(state_dim=1, action_dim=1, config=config, rng=0)
        state = np.array([0.0])
        actions = np.array([[0.0], [1.0], [2.0]])
        picks = {
            agent.select_action(state, actions, explore=True)
            for _ in range(60)
        }
        assert picks == {0, 1, 2}

    def test_zero_exploration_is_greedy(self):
        config = DQNConfig(exploration=ConstantSchedule(0.0))
        agent = DQNAgent(state_dim=1, action_dim=1, config=config, rng=0)
        state = np.array([0.0])
        actions = np.array([[0.0], [1.0]])
        greedy = agent.select_action(state, actions, explore=False)
        for _ in range(20):
            assert agent.select_action(state, actions, explore=True) == greedy

    def test_empty_actions_rejected(self):
        agent = DQNAgent(state_dim=1, action_dim=1, rng=0)
        with pytest.raises(ValueError):
            agent.select_action(np.zeros(1), np.zeros((0, 1)))


class TestTraining:
    def test_train_step_on_empty_memory_is_noop(self):
        agent = DQNAgent(state_dim=1, action_dim=1, rng=0)
        assert agent.train_step() == 0.0
        assert agent.updates_done == 0

    def test_learns_terminal_rewards(self):
        config = DQNConfig(batch_size=16)
        agent = DQNAgent(state_dim=2, action_dim=1, config=config, rng=0)
        state = np.array([0.5, 0.5])
        for _ in range(200):
            agent.remember(terminal_transition(state, np.array([1.0]), 1.0))
            agent.remember(terminal_transition(state, np.array([0.0]), 0.0))
            agent.train_step()
        values = agent.q_values(state, np.array([[0.0], [1.0]]))
        assert values[1] > values[0] + 0.5

    def test_bellman_backup_uses_next_actions(self):
        """A two-step chain: Q(s0, a) must approach gamma * c."""
        config = DQNConfig(batch_size=8, discount=0.5)
        agent = DQNAgent(state_dim=1, action_dim=1, config=config, rng=0)
        s0 = np.array([0.0])
        s1 = np.array([1.0])
        a = np.array([1.0])
        next_actions = np.array([[1.0]])
        for _ in range(400):
            agent.remember(
                Transition(s0, a, 0.0, s1, next_actions, terminal=False)
            )
            agent.remember(terminal_transition(s1, a, 1.0))
            agent.train_step()
        q0 = float(agent.q_values(s0, a[None, :])[0])
        q1 = float(agent.q_values(s1, a[None, :])[0])
        assert q1 == pytest.approx(1.0, abs=0.15)
        assert q0 == pytest.approx(0.5, abs=0.15)

    def test_target_sync_cadence(self):
        config = DQNConfig(batch_size=4, target_sync_every=5)
        agent = DQNAgent(state_dim=1, action_dim=1, config=config, rng=0)
        for _ in range(10):
            agent.remember(terminal_transition(np.zeros(1), np.ones(1), 1.0))
        for step in range(1, 11):
            agent.train_step()
        assert agent.updates_done == 10

    def test_loss_returned_non_negative(self):
        agent = DQNAgent(state_dim=1, action_dim=1, rng=0)
        agent.remember(terminal_transition(np.zeros(1), np.ones(1), 1.0))
        assert agent.train_step() >= 0.0

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            DQNAgent(state_dim=0, action_dim=1)


class TestNumericalRobustness:
    def test_q_values_stay_finite_under_large_rewards(self):
        config = DQNConfig(batch_size=8)
        agent = DQNAgent(state_dim=2, action_dim=1, config=config, rng=0)
        state = np.array([0.5, 0.5])
        for _ in range(200):
            agent.remember(
                terminal_transition(state, np.array([1.0]), 1_000.0)
            )
            agent.train_step()
        values = agent.q_values(state, np.array([[1.0]]))
        assert np.all(np.isfinite(values))

    def test_selu_inputs_far_outside_unit_range(self):
        agent = DQNAgent(state_dim=2, action_dim=1, rng=0)
        extreme = np.array([50.0, -50.0])
        values = agent.q_values(extreme, np.array([[1.0]]))
        assert np.all(np.isfinite(values))

    def test_training_reduces_loss_on_fixed_batch(self):
        config = DQNConfig(batch_size=32, target_sync_every=1)
        agent = DQNAgent(state_dim=1, action_dim=1, config=config, rng=0)
        rng = np.random.default_rng(0)
        for _ in range(64):
            s = rng.uniform(size=1)
            a = rng.uniform(size=1)
            agent.remember(terminal_transition(s, a, float(s[0] + a[0])))
        first_losses = [agent.train_step() for _ in range(5)]
        for _ in range(200):
            agent.train_step()
        last_losses = [agent.train_step() for _ in range(5)]
        assert np.mean(last_losses) <= np.mean(first_losses)
