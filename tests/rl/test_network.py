"""Tests for the numpy MLP, including finite-difference gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rl.network import MLP


def finite_difference_check(net: MLP, x: np.ndarray, y: np.ndarray) -> float:
    """Max abs error between backprop and central finite differences."""

    def loss() -> float:
        return float(np.mean((net.forward(x) - y) ** 2))

    predictions = net.forward(x, cache=True)
    grads = net.backward(2.0 * (predictions - y) / x.shape[0])
    params = net.parameters()
    worst = 0.0
    rng = np.random.default_rng(0)
    for param, grad in zip(params, grads):
        flat = param.reshape(-1)
        flat_grad = grad.reshape(-1)
        for index in rng.choice(flat.size, size=min(5, flat.size), replace=False):
            eps = 1e-6
            original = flat[index]
            flat[index] = original + eps
            up = loss()
            flat[index] = original - eps
            down = loss()
            flat[index] = original
            numeric = (up - down) / (2 * eps)
            worst = max(worst, abs(numeric - flat_grad[index]))
    return worst


class TestConstruction:
    def test_layer_shapes(self):
        net = MLP((4, 8, 1), rng=0)
        assert net.weights[0].shape == (4, 8)
        assert net.weights[1].shape == (8, 1)
        assert net.n_layers == 2

    def test_rejects_single_layer(self):
        with pytest.raises(ValueError):
            MLP((4,))

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            MLP((4, 0, 1))

    def test_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP((2, 2), activation="swish")

    def test_deterministic_init(self):
        a = MLP((3, 5, 1), rng=9)
        b = MLP((3, 5, 1), rng=9)
        np.testing.assert_array_equal(a.weights[0], b.weights[0])


class TestForward:
    def test_output_shape(self):
        net = MLP((3, 6, 2), rng=0)
        out = net.forward(np.zeros((5, 3)))
        assert out.shape == (5, 2)

    def test_single_sample_promoted(self):
        net = MLP((3, 6, 1), rng=0)
        out = net.forward(np.zeros(3))
        assert out.shape == (1, 1)

    def test_wrong_input_dim_rejected(self):
        net = MLP((3, 6, 1), rng=0)
        with pytest.raises(ValueError):
            net.forward(np.zeros((5, 4)))

    def test_linear_output_layer(self):
        """Output can be negative (no activation on the last layer)."""
        net = MLP((2, 4, 1), rng=1)
        outputs = net.forward(np.random.default_rng(0).normal(size=(100, 2)))
        assert outputs.min() < 0 or outputs.max() > 0


class TestBackward:
    @pytest.mark.parametrize("activation", ["selu", "relu", "tanh"])
    def test_gradients_match_finite_differences(self, activation):
        net = MLP((3, 7, 1), activation=activation, rng=0)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(6, 3))
        y = rng.normal(size=(6, 1))
        assert finite_difference_check(net, x, y) < 1e-5

    def test_deep_network_gradients(self):
        net = MLP((2, 5, 5, 1), rng=2)
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 2))
        y = rng.normal(size=(4, 1))
        assert finite_difference_check(net, x, y) < 1e-5

    def test_backward_without_cache_rejected(self):
        net = MLP((2, 3, 1), rng=0)
        net.forward(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            net.backward(np.zeros((1, 1)))

    def test_gradient_list_matches_parameters(self):
        net = MLP((2, 3, 1), rng=0)
        net.forward(np.zeros((1, 2)), cache=True)
        grads = net.backward(np.ones((1, 1)))
        params = net.parameters()
        assert len(grads) == len(params)
        for grad, param in zip(grads, params):
            assert grad.shape == param.shape


class TestCloneAndSync:
    def test_clone_is_equal_but_independent(self):
        net = MLP((2, 4, 1), rng=0)
        twin = net.clone()
        np.testing.assert_array_equal(net.weights[0], twin.weights[0])
        twin.weights[0][0, 0] += 1.0
        assert net.weights[0][0, 0] != twin.weights[0][0, 0]

    def test_copy_from(self):
        a = MLP((2, 4, 1), rng=0)
        b = MLP((2, 4, 1), rng=1)
        b.copy_from(a)
        np.testing.assert_array_equal(a.weights[1], b.weights[1])

    def test_copy_from_shape_mismatch(self):
        a = MLP((2, 4, 1), rng=0)
        b = MLP((2, 5, 1), rng=1)
        with pytest.raises(ValueError):
            b.copy_from(a)


class TestTrainability:
    def test_can_fit_linear_function(self):
        """A tiny regression task must be learnable with plain SGD."""
        from repro.rl.optim import Adam

        net = MLP((2, 16, 1), rng=0)
        optimizer = Adam(net.parameters(), lr=0.01)
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(128, 2))
        y = (2 * x[:, :1] - x[:, 1:]) * 0.5
        for _ in range(300):
            pred = net.forward(x, cache=True)
            grads = net.backward(2 * (pred - y) / len(x))
            optimizer.step(grads)
        final = float(np.mean((net.forward(x) - y) ** 2))
        assert final < 1e-3
