"""Tests for SGD and Adam optimisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rl.optim import SGD, Adam


def quadratic_descent(optimizer_factory, steps: int = 200) -> float:
    """Minimise f(x) = ||x||^2 from a fixed start; return final norm."""
    x = np.array([3.0, -2.0])
    params = [x]
    optimizer = optimizer_factory(params)
    for _ in range(steps):
        optimizer.step([2 * x])
    return float(np.linalg.norm(x))


class TestSGD:
    def test_descends_quadratic(self):
        assert quadratic_descent(lambda p: SGD(p, lr=0.05)) < 1e-3

    def test_momentum_descends(self):
        assert quadratic_descent(lambda p: SGD(p, lr=0.02, momentum=0.9)) < 1e-3

    def test_updates_in_place(self):
        x = np.array([1.0])
        optimizer = SGD([x], lr=0.5)
        optimizer.step([np.array([1.0])])
        assert x[0] == pytest.approx(0.5)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], lr=0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], momentum=1.0)

    def test_gradient_count_mismatch(self):
        optimizer = SGD([np.zeros(1)])
        with pytest.raises(ValueError):
            optimizer.step([np.zeros(1), np.zeros(1)])


class TestAdam:
    def test_descends_quadratic(self):
        assert quadratic_descent(lambda p: Adam(p, lr=0.1)) < 1e-2

    def test_handles_sparse_scales(self):
        # Coordinates with very different gradient magnitudes.
        x = np.array([100.0, 0.01])
        optimizer = Adam([x], lr=0.5)
        for _ in range(500):
            optimizer.step([np.array([2 * x[0], 0.0002 * x[1]])])
        assert abs(x[0]) < 1.0

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([np.zeros(1)], lr=-0.1)

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([np.zeros(1)], beta1=1.0)

    def test_gradient_count_mismatch(self):
        optimizer = Adam([np.zeros(1)])
        with pytest.raises(ValueError):
            optimizer.step([])

    def test_bias_correction_first_step(self):
        """First Adam step moves by ~lr regardless of gradient scale."""
        x = np.array([1.0])
        optimizer = Adam([x], lr=0.1)
        optimizer.step([np.array([1e-4])])
        assert x[0] == pytest.approx(0.9, abs=1e-3)
