"""Tests for the replay memory and the Transition container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rl.replay import ReplayMemory, Transition


def make_transition(tag: float, terminal: bool = False) -> Transition:
    return Transition(
        state=np.array([tag]),
        action=np.array([tag]),
        reward=tag,
        next_state=np.array([tag + 1]),
        next_actions=None if terminal else np.array([[tag]]),
        terminal=terminal,
    )


class TestTransition:
    def test_terminal_requires_no_next_actions(self):
        with pytest.raises(ValueError):
            Transition(
                state=np.zeros(1),
                action=np.zeros(1),
                reward=1.0,
                next_state=np.zeros(1),
                next_actions=np.zeros((1, 1)),
                terminal=True,
            )

    def test_non_terminal_requires_next_actions(self):
        with pytest.raises(ValueError):
            Transition(
                state=np.zeros(1),
                action=np.zeros(1),
                reward=0.0,
                next_state=np.zeros(1),
                next_actions=None,
                terminal=False,
            )

    def test_arrays_coerced_to_float(self):
        t = make_transition(1.0)
        assert t.state.dtype == float


class TestReplayMemory:
    def test_push_and_len(self):
        memory = ReplayMemory(capacity=10)
        memory.push(make_transition(1.0))
        assert len(memory) == 1

    def test_eviction_at_capacity(self):
        memory = ReplayMemory(capacity=3)
        for tag in range(5):
            memory.push(make_transition(float(tag)))
        assert len(memory) == 3
        stored = {t.reward for t in memory.sample(50, rng=0)}
        assert stored <= {2.0, 3.0, 4.0}

    def test_sample_uniform_coverage(self):
        memory = ReplayMemory(capacity=100)
        for tag in range(10):
            memory.push(make_transition(float(tag)))
        seen = {t.reward for t in memory.sample(200, rng=0)}
        assert len(seen) >= 8

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            ReplayMemory().sample(1)

    def test_sample_more_than_stored_allows_replacement(self):
        memory = ReplayMemory()
        memory.push(make_transition(1.0))
        batch = memory.sample(8, rng=0)
        assert len(batch) == 8

    def test_bool(self):
        memory = ReplayMemory()
        assert not memory
        memory.push(make_transition(0.0))
        assert memory

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayMemory(capacity=0)

    def test_deterministic_sampling(self):
        memory = ReplayMemory()
        for tag in range(20):
            memory.push(make_transition(float(tag)))
        a = [t.reward for t in memory.sample(5, rng=3)]
        b = [t.reward for t in memory.sample(5, rng=3)]
        assert a == b
