"""Tests for exploration schedules."""

from __future__ import annotations

import pytest

from repro.rl.schedules import ConstantSchedule, LinearDecay


class TestConstantSchedule:
    def test_constant_value(self):
        schedule = ConstantSchedule(0.9)
        assert schedule.value(0) == 0.9
        assert schedule.value(10_000) == 0.9

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ConstantSchedule(1.5)

    def test_repr(self):
        assert "0.9" in repr(ConstantSchedule(0.9))


class TestLinearDecay:
    def test_endpoints(self):
        schedule = LinearDecay(0.9, 0.1, steps=100)
        assert schedule.value(0) == pytest.approx(0.9)
        assert schedule.value(100) == pytest.approx(0.1)

    def test_midpoint(self):
        schedule = LinearDecay(1.0, 0.0, steps=10)
        assert schedule.value(5) == pytest.approx(0.5)

    def test_clamps_after_end(self):
        schedule = LinearDecay(0.9, 0.1, steps=10)
        assert schedule.value(1_000) == pytest.approx(0.1)

    def test_monotone_decreasing(self):
        schedule = LinearDecay(0.8, 0.05, steps=50)
        values = [schedule.value(t) for t in range(60)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_rejects_negative_step(self):
        schedule = LinearDecay(0.9, 0.1, steps=10)
        with pytest.raises(ValueError):
            schedule.value(-1)

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            LinearDecay(0.9, 0.1, steps=0)

    def test_increasing_schedule_allowed(self):
        schedule = LinearDecay(0.1, 0.9, steps=10)
        assert schedule.value(10) == pytest.approx(0.9)
