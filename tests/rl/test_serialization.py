"""Tests for agent persistence (save_agent / load_agent)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_session
from repro.errors import DataError
from repro.rl.serialization import load_agent, save_agent
from repro.users import OracleUser


class TestRoundTrip:
    def test_ea_round_trip_identical_behaviour(
        self, trained_ea_3d, small_anti_3d, tmp_path
    ):
        path = save_agent(trained_ea_3d, tmp_path / "ea_agent")
        assert path.suffix == ".npz"
        loaded = load_agent(path)
        u = np.array([0.3, 0.3, 0.4])
        original = run_session(trained_ea_3d.new_session(rng=5), OracleUser(u))
        restored = run_session(loaded.new_session(rng=5), OracleUser(u))
        assert original.rounds == restored.rounds
        assert original.recommendation_index == restored.recommendation_index

    def test_aa_round_trip_identical_behaviour(
        self, trained_aa_3d, small_anti_3d, tmp_path
    ):
        path = save_agent(trained_aa_3d, tmp_path / "aa_agent.npz")
        loaded = load_agent(path)
        u = np.array([0.25, 0.35, 0.4])
        original = run_session(trained_aa_3d.new_session(rng=9), OracleUser(u))
        restored = run_session(loaded.new_session(rng=9), OracleUser(u))
        assert original.rounds == restored.rounds
        assert original.recommendation_index == restored.recommendation_index

    def test_config_preserved(self, trained_ea_3d, tmp_path):
        loaded = load_agent(save_agent(trained_ea_3d, tmp_path / "a.npz"))
        assert loaded.config == trained_ea_3d.config

    def test_dataset_preserved(self, trained_ea_3d, tmp_path):
        loaded = load_agent(save_agent(trained_ea_3d, tmp_path / "a.npz"))
        np.testing.assert_array_equal(
            loaded.dataset.points, trained_ea_3d.dataset.points
        )
        assert loaded.dataset.attribute_names == (
            trained_ea_3d.dataset.attribute_names
        )

    def test_weights_preserved_exactly(self, trained_ea_3d, tmp_path):
        loaded = load_agent(save_agent(trained_ea_3d, tmp_path / "a.npz"))
        for mine, theirs in zip(
            loaded.dqn.network.parameters(),
            trained_ea_3d.dqn.network.parameters(),
        ):
            np.testing.assert_array_equal(mine, theirs)


class TestErrors:
    def test_rejects_non_agent(self, tmp_path):
        with pytest.raises(TypeError):
            save_agent("not an agent", tmp_path / "x.npz")

    def test_corrupt_version_rejected(self, trained_ea_3d, tmp_path):
        import json

        path = save_agent(trained_ea_3d, tmp_path / "a.npz")
        with np.load(path, allow_pickle=False) as archive:
            data = {k: archive[k] for k in archive.files}
        meta = json.loads(str(data["meta"]))
        meta["format_version"] = 999
        data["meta"] = np.array(json.dumps(meta))
        np.savez(path, **data)
        with pytest.raises(DataError):
            load_agent(path)
