"""Tests for the concurrent session-serving subsystem."""
