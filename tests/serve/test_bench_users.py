"""serve-bench x user-model zoo: wiring, validation and determinism."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serve import run_serve_bench
from repro.users import NoisyUser


def bench(dataset, **kwargs):
    defaults = dict(sessions=4, episodes=2, seed=0, max_rounds=30)
    defaults.update(kwargs)
    return run_serve_bench(dataset, **defaults)


class TestUserModelWiring:
    def test_default_is_oracle(self, small_anti_3d):
        report = bench(small_anti_3d)
        assert report.user_model == "oracle"
        assert report.metrics.abstentions == 0

    def test_noise_upgrades_oracle_to_noisy(self, small_anti_3d):
        report = bench(small_anti_3d, noise=0.2)
        assert report.user_model == "noisy"
        assert report.snapshot_sections()["config"]["user_model"] == "noisy"

    def test_oracle_rows_unchanged_by_the_zoo(self, small_anti_3d):
        """The pre-zoo seed streams must survive: an oracle bench draws
        no per-user seeds, so its rounds are bit-stable."""
        a = bench(small_anti_3d)
        b = bench(small_anti_3d)
        assert a.metrics.rounds_total == b.metrics.rounds_total
        assert [r.recommendation_index for r in a.results] == [
            r.recommendation_index for r in b.results
        ]

    def test_abstaining_fleet_reports_abstentions(self, small_anti_3d):
        report = bench(small_anti_3d, user_model="abstaining", sessions=6)
        assert report.user_model == "abstaining"
        assert report.metrics.abstentions > 0
        counters = report.snapshot_sections()["counters"]
        assert counters["abstentions"] == report.metrics.abstentions

    @pytest.mark.parametrize("engine", ["wave", "continuous"])
    def test_zoo_models_run_on_both_engines(self, small_anti_3d, engine):
        report = bench(
            small_anti_3d, user_model="drifting", engine=engine
        )
        assert report.metrics.failed == 0 or report.metrics.recovered >= 0
        assert len(report.results) == 4

    def test_specs_are_tagged_with_the_model(self, small_anti_3d):
        report = bench(small_anti_3d, user_model="fatigue")
        assert report.user_model == "fatigue"


class TestValidation:
    def test_rejects_noise_of_one(self, small_anti_3d):
        with pytest.raises(ConfigurationError):
            bench(small_anti_3d, noise=1.0)

    def test_rejects_unknown_user_model(self, small_anti_3d):
        with pytest.raises(ConfigurationError):
            bench(small_anti_3d, user_model="psychic")

    def test_noisy_user_validation_agrees_with_bench(self, small_anti_3d):
        """Regression: NoisyUser used to accept error_rate == 1.0 while
        the bench rejected noise >= 1 — both now draw the same line."""
        import numpy as np

        with pytest.raises(ConfigurationError):
            bench(small_anti_3d, noise=1.0)
        with pytest.raises(ValueError):
            NoisyUser(np.array([0.5, 0.5]), error_rate=1.0)
        # And the largest bench-legal noise builds a legal user.
        NoisyUser(np.array([0.5, 0.5]), error_rate=0.999)
