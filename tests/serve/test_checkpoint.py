"""Engine-level checkpoint/resume and the async front door.

Covers the :mod:`repro.persist` integration of both engines:

* ``ContinuousEngine.checkpoint(ticket)`` / ``.resume(...)`` — a
  session interrupted mid-flight (even across engine instances, i.e. a
  simulated process restart) finishes bit-identically;
* ``SessionEngine(store=..., checkpoint_every=N)`` — periodic
  checkpoints during ``run()``, with transcripts contiguous across a
  resume gap;
* ``ContinuousEngine.asubmit`` — many concurrent asyncio submissions
  ride one scheduler and resolve to correct results, excluded from
  ``drain()``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.baselines import UHRandomSession
from repro.core.session import run_session
from repro.data.utility import sample_training_utilities
from repro.errors import ConfigurationError, PersistenceError
from repro.persist import MemorySessionStore, resumed_spec
from repro.serve import ContinuousEngine, SessionEngine, SessionSpec
from repro.users import OracleUser

EPSILON = 0.1


def _user(seed=0):
    return OracleUser(sample_training_utilities(3, 1, rng=50 + seed)[0])


def _spec(dataset, seed=0, session_id=None):
    tags = {"session_id": session_id} if session_id else {}
    return SessionSpec(
        factory=lambda: UHRandomSession(dataset, EPSILON, rng=9 + seed),
        user=_user(seed),
        seed=seed,
        tags=tags,
    )


class TestContinuousCheckpoint:
    def test_resume_across_engine_instances(self, small_anti_3d):
        reference = run_session(
            UHRandomSession(small_anti_3d, EPSILON, rng=9), _user()
        )

        store = MemorySessionStore()
        with ContinuousEngine(store=store) as engine:
            ticket = engine.submit(_spec(small_anti_3d, session_id="s1"))
            for _ in range(3):
                engine.step()
            engine.checkpoint(ticket)
        assert "s1" in store  # persisted before the "crash"

        with ContinuousEngine(store=store) as fresh:
            fresh.resume("s1", _user())
            (result,) = fresh.drain()
        assert result.rounds == reference.rounds
        assert result.recommendation_index == reference.recommendation_index
        np.testing.assert_array_equal(
            result.recommendation, reference.recommendation
        )

    def test_checkpoint_after_resume_has_contiguous_transcript(
        self, small_anti_3d
    ):
        store = MemorySessionStore()
        with ContinuousEngine(store=store) as engine:
            ticket = engine.submit(_spec(small_anti_3d, session_id="s2"))
            for _ in range(2):
                engine.step()
            engine.checkpoint(ticket)

        with ContinuousEngine(store=store) as fresh:
            ticket = fresh.resume("s2", _user())
            fresh.step()
            snapshot = fresh.checkpoint(ticket)
            fresh.drain()
        rounds = [entry.round_number for entry in snapshot.transcript]
        assert rounds == list(range(1, len(rounds) + 1))

    def test_resume_by_id_needs_a_store(self, small_anti_3d):
        with ContinuousEngine() as engine:
            with pytest.raises(PersistenceError, match="store"):
                engine.resume("anything", _user())

    def test_checkpoint_unknown_ticket_raises(self, small_anti_3d):
        with ContinuousEngine() as engine:
            with pytest.raises(PersistenceError, match="no live session"):
                engine.checkpoint(12345)

    def test_checkpoint_before_admission_raises(self, small_anti_3d):
        with ContinuousEngine() as engine:
            ticket = engine.submit(_spec(small_anti_3d))
            with pytest.raises(PersistenceError, match="not been admitted"):
                engine.checkpoint(ticket)
            engine.drain()


class TestWaveCheckpoint:
    def test_checkpoint_every_needs_store(self):
        with pytest.raises(ConfigurationError, match="store"):
            SessionEngine(checkpoint_every=2)

    def test_periodic_checkpoints_are_written(self, small_anti_3d):
        store = MemorySessionStore()
        engine = SessionEngine(store=store, checkpoint_every=1)
        engine.run([_spec(small_anti_3d, session_id="wave-1")])
        snapshot = store.get("wave-1")
        assert snapshot.rounds > 0
        assert snapshot.family == "uh-random"

    def test_truncated_run_resumes_identically(self, small_anti_3d):
        reference = run_session(
            UHRandomSession(small_anti_3d, EPSILON, rng=9), _user()
        )

        store = MemorySessionStore()
        short = SessionEngine(max_rounds=3, store=store, checkpoint_every=1)
        (truncated,) = short.run([_spec(small_anti_3d, session_id="wave-2")])
        assert truncated.truncated

        snapshot = store.get("wave-2")
        (result,) = SessionEngine().run([resumed_spec(snapshot, _user())])
        assert result.rounds == reference.rounds
        assert result.recommendation_index == reference.recommendation_index


class TestAsubmit:
    def test_many_concurrent_waiters(self, small_anti_3d):
        async def main(engine):
            futures = [
                engine.asubmit(_spec(small_anti_3d, seed=seed))
                for seed in range(12)
            ]
            return await asyncio.gather(*futures)

        with ContinuousEngine(max_in_flight=8) as engine:
            results = asyncio.run(main(engine))
            assert len(results) == 12
            for seed, result in enumerate(results):
                assert result.status == "completed"
                reference = run_session(
                    UHRandomSession(small_anti_3d, EPSILON, rng=9 + seed),
                    _user(seed),
                )
                assert result.rounds == reference.rounds
                assert (
                    result.recommendation_index
                    == reference.recommendation_index
                )
            # Async tickets are consumed by their futures.
            assert engine.drain() == []

    def test_future_carries_ticket_for_checkpoint(self, small_anti_3d):
        store = MemorySessionStore()

        async def main(engine):
            future = engine.asubmit(_spec(small_anti_3d, session_id="a1"))
            result = await future
            return future.ticket, result

        with ContinuousEngine(store=store) as engine:
            ticket, result = asyncio.run(main(engine))
        assert isinstance(ticket, int)
        assert result.status == "completed"

    def test_asubmit_mixes_with_sync_submissions(self, small_anti_3d):
        async def main(engine):
            future = engine.asubmit(_spec(small_anti_3d, seed=0))
            return await future

        with ContinuousEngine() as engine:
            sync_ticket = engine.submit(_spec(small_anti_3d, seed=1))
            async_result = asyncio.run(main(engine))
            results = engine.drain()
        assert async_result.status == "completed"
        # drain() reports only the synchronous ticket.
        assert len(results) == 1
        reference = run_session(
            UHRandomSession(small_anti_3d, EPSILON, rng=10), _user(1)
        )
        assert results[0].rounds == reference.rounds
        assert sync_ticket >= 0
