"""ShardedDispatcher: multi-process serving equivalence and resilience.

Three contracts:

* **Golden equivalence** — ``procs=2`` results are bit-identical to a
  single-process ``ContinuousEngine`` run over the same 52-session
  golden suite (every family, truthful and noisy users): forking and
  sharding must never perturb a session's transcript.
* **Crash-resume** — a SIGKILL'd worker's sessions are resumed from
  their shared-store checkpoints by a replacement worker and still
  finish bit-identically, with contiguous transcripts; when the restart
  budget is exhausted, lost sessions come back as ``failed`` results
  instead of hanging the wave.
* **Runtime lifecycle** — drain order, close idempotence and
  submit-after-close mirror the single-process engine's semantics.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.errors import InteractionError, PersistenceError
from repro.persist import FileSessionStore
from repro.registry import make_session
from repro.serve import (
    ContinuousEngine,
    EngineMetrics,
    SessionSpec,
    ShardedDispatcher,
)
from repro.serve.dispatch import _WorkItem
from repro.users import NoisyUser, OracleUser
from tests.persist.test_golden_resume import (
    BASELINE_SEEDS,
    BASELINES,
    EPSILON,
    RL_SEEDS,
    ROUND_CAP,
    USER_KINDS,
    _make_user,
)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="ShardedDispatcher needs the fork start method",
)


def _golden_specs(dataset, trained_ea, trained_aa):
    """The 52-case golden suite as SessionSpecs (fresh users per call)."""
    specs = []
    for family in BASELINES:
        for kind in USER_KINDS:
            for seed in BASELINE_SEEDS:
                specs.append(
                    SessionSpec(
                        factory=lambda family=family, seed=seed: make_session(
                            family, dataset, EPSILON, rng=100 + seed
                        ),
                        user=_make_user(kind, dataset.dimension, seed),
                        seed=seed,
                        tags={"session_id": f"{family}-{kind}-{seed}"},
                    )
                )
    for family, trained in (("ea", trained_ea), ("aa", trained_aa)):
        for kind in USER_KINDS:
            for seed in RL_SEEDS:
                specs.append(
                    SessionSpec(
                        factory=lambda trained=trained, seed=seed: (
                            trained.new_session(rng=100 + seed)
                        ),
                        user=_make_user(kind, dataset.dimension, seed),
                        seed=seed,
                        tags={"session_id": f"{family}-{kind}-{seed}"},
                    )
                )
    return specs


def _outcome(result):
    return (
        result.recommendation_index,
        result.rounds,
        result.truncated,
        result.status,
    )


class _SlowOracleUser(OracleUser):
    """An oracle that thinks for a moment — keeps sessions in flight
    long enough for the kill thread to land mid-wave."""

    def __init__(self, utility, delay: float = 0.02) -> None:
        super().__init__(utility)
        self.delay = delay

    def prefers(self, p_i, p_j) -> bool:
        time.sleep(self.delay)
        return super().prefers(p_i, p_j)


class _StalledUser(OracleUser):
    """An oracle whose first answer never arrives (until killed)."""

    def prefers(self, p_i, p_j) -> bool:
        time.sleep(300.0)
        return super().prefers(p_i, p_j)  # pragma: no cover


def _agent_specs(trained, users, *, ids=True):
    return [
        SessionSpec(
            factory=lambda seed=seed: trained.new_session(rng=seed),
            user=user,
            seed=seed,
            tags={"session_id": f"kill-{seed:02d}"} if ids else {},
        )
        for seed, user in enumerate(users)
    ]


def _kill_first_worker(dispatcher, killed, *, after_ckpt=False):
    """Background thread body: SIGKILL the first live, not-done worker."""
    deadline = time.time() + 30.0
    while time.time() < deadline:
        if after_ckpt:
            with dispatcher._lock:
                ready = bool(dispatcher._ckpts)
            if not ready:
                time.sleep(0.005)
                continue
        live = [
            w
            for w in dispatcher._live
            if w.process.is_alive() and not w.done
        ]
        if live:
            os.kill(live[0].process.pid, signal.SIGKILL)
            killed.append(live[0].process.pid)
            return
        time.sleep(0.005)


class TestGoldenEquivalence:
    def test_procs2_bit_identical_to_single_process(
        self, small_anti_3d, trained_ea_3d, trained_aa_3d
    ):
        with ContinuousEngine(max_rounds=ROUND_CAP, max_in_flight=8) as ref:
            reference = ref.run(
                _golden_specs(small_anti_3d, trained_ea_3d, trained_aa_3d)
            )
        with ShardedDispatcher(
            procs=2, max_rounds=ROUND_CAP, max_in_flight=8
        ) as dispatcher:
            for spec in _golden_specs(
                small_anti_3d, trained_ea_3d, trained_aa_3d
            ):
                dispatcher.submit(spec)
            sharded = dispatcher.drain()
            metrics = dispatcher.last_metrics

        assert len(reference) == len(sharded) == 52
        assert [_outcome(r) for r in reference] == [
            _outcome(r) for r in sharded
        ]
        for ref_result, shard_result in zip(reference, sharded):
            np.testing.assert_array_equal(
                ref_result.recommendation, shard_result.recommendation
            )
        # Merged worker metrics cover the whole suite once.
        assert metrics is not None
        assert metrics.sessions == 52
        assert metrics.completed + metrics.truncated + metrics.failed == 52
        assert metrics.rounds_total == sum(r.rounds for r in reference)


class TestCrashResume:
    def test_sigkilled_worker_resumes_from_checkpoints(
        self, trained_aa_3d, tmp_path
    ):
        from repro.data.utility import sample_training_utilities

        utilities = sample_training_utilities(3, 8, rng=77)
        reference_users = [OracleUser(u) for u in utilities]
        with ContinuousEngine(max_in_flight=4) as ref:
            reference = ref.run(_agent_specs(trained_aa_3d, reference_users))

        store = FileSessionStore(tmp_path / "ckpts")
        slow_users = [_SlowOracleUser(u) for u in utilities]
        killed: list[int] = []
        with ShardedDispatcher(
            procs=2,
            max_in_flight=4,
            store=store,
            checkpoint_every=1,
            agents={"aa": trained_aa_3d},
        ) as dispatcher:
            for spec in _agent_specs(trained_aa_3d, slow_users):
                dispatcher.submit(spec)
            # Wait for a checkpoint notice before killing, so the
            # replacement provably resumes from the store rather than
            # re-admitting original specs.
            killer = threading.Thread(
                target=_kill_first_worker,
                args=(dispatcher, killed),
                kwargs={"after_ckpt": True},
            )
            killer.start()
            results = dispatcher.drain()
            killer.join()

        assert killed, "the kill thread never found a live worker"
        assert len(results) == 8
        assert [r.status for r in results] == ["completed"] * 8
        # Bit-identical to the unkilled single-process run: the resumed
        # sessions picked up exactly where their checkpoints left off.
        assert [_outcome(r) for r in reference] == [
            _outcome(r) for r in results
        ]
        for ref_result, result in zip(reference, results):
            np.testing.assert_array_equal(
                ref_result.recommendation, result.recommendation
            )
        # Contiguous transcripts: every final checkpoint's rounds count
        # 1..n with no gap or duplicate from the rollback.
        checkpoint_ids = store.ids()
        assert checkpoint_ids, "checkpoint_every=1 never wrote a snapshot"
        for session_id in checkpoint_ids:
            rounds = [
                entry.round_number
                for entry in store.get(session_id).transcript
            ]
            assert rounds == list(range(1, len(rounds) + 1))

    def test_restart_budget_exhaustion_fails_lost_sessions(
        self, trained_aa_3d
    ):
        from repro.data.utility import sample_training_utilities

        utilities = sample_training_utilities(3, 3, rng=78)
        users = [_StalledUser(u) for u in utilities]
        killed: list[int] = []
        with ShardedDispatcher(
            procs=1, max_in_flight=4, max_restarts=0
        ) as dispatcher:
            for spec in _agent_specs(trained_aa_3d, users, ids=False):
                dispatcher.submit(spec)
            killer = threading.Thread(
                target=_kill_first_worker, args=(dispatcher, killed)
            )
            killer.start()
            results = dispatcher.drain()
            killer.join()
            metrics = dispatcher.metrics

        assert killed
        assert len(results) == 3
        assert all(r.status == "failed" for r in results)
        assert all("WorkerDied" in r.error for r in results)
        assert all(r.recommendation_index == -1 for r in results)
        assert metrics.failed == 3
        assert {e.error_type for e in metrics.errors} == {"WorkerDied"}


class TestLifecycle:
    def test_drain_returns_submission_order(self, trained_aa_3d):
        from repro.data.utility import sample_training_utilities

        utilities = sample_training_utilities(3, 5, rng=79)
        users = [OracleUser(u) for u in utilities]
        with ShardedDispatcher(procs=2, max_in_flight=4) as dispatcher:
            tickets = [
                dispatcher.submit(spec)
                for spec in _agent_specs(trained_aa_3d, users)
            ]
            results = dispatcher.drain()
        assert tickets == [0, 1, 2, 3, 4]
        assert [r.metrics.session_id for r in results] == tickets

    def test_as_completed_streams_then_drain_reports(self, trained_aa_3d):
        from repro.data.utility import sample_training_utilities

        utilities = sample_training_utilities(3, 4, rng=80)
        users = [OracleUser(u) for u in utilities]
        with ShardedDispatcher(procs=2, max_in_flight=4) as dispatcher:
            for spec in _agent_specs(trained_aa_3d, users):
                dispatcher.submit(spec)
            streamed = list(dispatcher.as_completed())
            drained = dispatcher.drain()
        assert len(streamed) == 4
        # drain() still reports the epoch, in submission order.
        assert [r.metrics.session_id for r in drained] == [0, 1, 2, 3]

    def test_close_is_idempotent_and_submit_after_close_raises(self, toy):
        dispatcher = ShardedDispatcher(procs=2)
        dispatcher.close()
        dispatcher.close()
        with pytest.raises(InteractionError, match="closed"):
            dispatcher.submit(
                SessionSpec(
                    factory=lambda: make_session("uh-random", toy, 0.3),
                    user=OracleUser(np.array([0.5, 0.5])),
                )
            )

    def test_parent_checkpoint_without_store_raises(self, toy):
        with ShardedDispatcher(procs=1) as dispatcher:
            ticket = dispatcher.submit(
                SessionSpec(
                    factory=lambda: make_session("uh-random", toy, 0.3),
                    user=OracleUser(np.array([0.5, 0.5])),
                )
            )
            with pytest.raises(PersistenceError, match="checkpoint inside"):
                dispatcher.checkpoint(ticket)

    def test_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ShardedDispatcher(procs=0)
        with pytest.raises(ConfigurationError):
            ShardedDispatcher(procs=2, checkpoint_every=-1)
        with pytest.raises(ConfigurationError):
            ShardedDispatcher(procs=2, max_restarts=-1)


class TestAffinity:
    def test_shard_is_stable_across_dispatchers(self):
        a = ShardedDispatcher(procs=4)
        b = ShardedDispatcher(procs=4)
        try:
            for session_id in ("alice", "bob", "ticket-17", "s-99"):
                item = _WorkItem(
                    ticket=0,
                    spec=None,
                    user=None,
                    trace=False,
                    session_id=session_id,
                )
                assert a._shard_of(item) == b._shard_of(item)
        finally:
            a.close()
            b.close()

    def test_all_shards_reachable(self):
        with ShardedDispatcher(procs=3) as dispatcher:
            shards = {
                dispatcher._shard_of(
                    _WorkItem(
                        ticket=i,
                        spec=None,
                        user=None,
                        trace=False,
                        session_id=f"session-{i}",
                    )
                )
                for i in range(64)
            }
        assert shards == {0, 1, 2}


class TestMetricsMerge:
    def test_counters_sum_and_extrema_max(self):
        left = EngineMetrics()
        left.sessions = 3
        left.completed = 2
        left.failed = 1
        left.ticks = 10
        left.in_flight_cap = 8
        left.peak_batch = 4
        left.rounds_total = 20
        left.batched_rows = 30
        left.batches = 10
        left.lp_solves = 5
        left.wall_seconds = 1.0
        left.phase_seconds = {"lp": 0.5, "score": 0.1}
        right = EngineMetrics()
        right.sessions = 2
        right.completed = 2
        right.ticks = 7
        right.in_flight_cap = 8
        right.peak_batch = 6
        right.rounds_total = 12
        right.batched_rows = 21
        right.batches = 7
        right.lp_solves = 3
        right.wall_seconds = 2.0
        right.phase_seconds = {"lp": 0.25, "interact": 0.2}

        merged = left.merge(right)
        assert merged is left
        assert merged.sessions == 5
        assert merged.completed == 4
        assert merged.failed == 1
        assert merged.ticks == 17
        # Workers share one per-engine cap: occupancy over summed ticks
        # needs the max, not the sum.
        assert merged.in_flight_cap == 8
        assert merged.peak_batch == 6
        assert merged.rounds_total == 32
        assert merged.batched_rows == 51
        assert merged.lp_solves == 8
        # Concurrent workers overlap in time.
        assert merged.wall_seconds == 2.0
        assert merged.phase_seconds == {
            "lp": 0.75,
            "score": 0.1,
            "interact": 0.2,
        }

    def test_merge_preserves_occupancy_identity(self):
        left = EngineMetrics()
        left.ticks = 10
        left.in_flight_cap = 4
        left.batched_rows = 30
        right = EngineMetrics()
        right.ticks = 6
        right.in_flight_cap = 4
        right.batched_rows = 12
        merged = left.merge(right)
        assert merged.occupancy == 42 / (16 * 4)

    def test_merge_extends_errors_and_per_session(self):
        from repro.serve import SessionError, SessionMetrics

        left = EngineMetrics()
        left.errors.append(
            SessionError(
                session_id=0, round=1, error_type="X", message="m"
            )
        )
        left.per_session.append(SessionMetrics(session_id=0))
        right = EngineMetrics()
        right.errors.append(
            SessionError(
                session_id=1, round=2, error_type="Y", message="n"
            )
        )
        right.per_session.append(SessionMetrics(session_id=1))
        merged = left.merge(right)
        assert [e.session_id for e in merged.errors] == [0, 1]
        assert [m.session_id for m in merged.per_session] == [0, 1]
