"""SessionEngine: determinism vs the sequential path, plus metrics.

The engine's contract is that sharing work across sessions (batched
Q-scoring, LP memoisation) must not perturb any individual session:
engine-driven sessions are bit-identical to sequential ``run_session``
runs over the same algorithm/user/seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import UHRandomSession
from repro.core.session import run_session
from repro.data.utility import sample_training_utilities
from repro.errors import InteractionError
from repro.geometry.lp import LPCache
from repro.serve import (
    EngineMetrics,
    SessionEngine,
    SessionSpec,
    run_serve_bench,
)
from repro.users import OracleUser

N_USERS = 4


def _hidden_users(dimension: int):
    utilities = sample_training_utilities(dimension, N_USERS, rng=2_024)
    return [OracleUser(u) for u in utilities]


def _specs(make_algorithm, users):
    """One factory-form SessionSpec per (seed, user)."""
    return [
        SessionSpec(
            factory=lambda seed=seed: make_algorithm(seed),
            user=user,
            seed=seed,
        )
        for seed, user in enumerate(users)
    ]


def _assert_identical(sequential, engine_results):
    """Engine results must match sequential ones field for field."""
    assert len(sequential) == len(engine_results)
    for seq, eng in zip(sequential, engine_results):
        assert seq.recommendation_index == eng.recommendation_index
        np.testing.assert_array_equal(seq.recommendation, eng.recommendation)
        assert seq.rounds == eng.rounds
        assert seq.truncated == eng.truncated


class TestDeterminism:
    """Engine-driven sessions replay the sequential path bit for bit."""

    def _run_both(self, make_algorithm, dataset):
        users = _hidden_users(dataset.dimension)
        sequential = [
            run_session(make_algorithm(seed), user)
            for seed, user in enumerate(users)
        ]
        engine = SessionEngine()
        engine_results = engine.run(_specs(make_algorithm, users))
        _assert_identical(sequential, engine_results)
        return engine

    def test_ea_sessions_identical(self, trained_ea_3d, small_anti_3d):
        engine = self._run_both(
            lambda seed: trained_ea_3d.new_session(rng=seed), small_anti_3d
        )
        metrics = engine.last_metrics
        assert metrics.batches > 0
        assert metrics.lp_solves > 0

    def test_aa_sessions_identical(self, trained_aa_3d, small_anti_3d):
        engine = self._run_both(
            lambda seed: trained_aa_3d.new_session(rng=seed), small_anti_3d
        )
        metrics = engine.last_metrics
        assert metrics.batches > 0
        assert metrics.lp_cache_hits > 0

    def test_baseline_sessions_identical(self, small_anti_3d):
        engine = self._run_both(
            lambda seed: UHRandomSession(small_anti_3d, epsilon=0.1, rng=seed),
            small_anti_3d,
        )
        # Baselines have no batched scorer: every round goes the
        # sequential next_question() route.
        assert engine.last_metrics.batches == 0

    def test_trace_matches_sequential(self, trained_ea_3d, small_anti_3d):
        users = _hidden_users(small_anti_3d.dimension)
        sequential = [
            run_session(trained_ea_3d.new_session(rng=seed), user, trace=True)
            for seed, user in enumerate(users)
        ]
        engine = SessionEngine()
        engine_results = engine.run(
            _specs(lambda seed: trained_ea_3d.new_session(rng=seed), users),
            trace=True,
        )
        for seq, eng in zip(sequential, engine_results):
            assert [r.round_number for r in seq.trace] == [
                r.round_number for r in eng.trace
            ]
            assert [r.recommendation_index for r in seq.trace] == [
                r.recommendation_index for r in eng.trace
            ]

    def test_cache_disabled_still_identical(self, trained_aa_3d, small_anti_3d):
        users = _hidden_users(small_anti_3d.dimension)
        sequential = [
            run_session(trained_aa_3d.new_session(rng=seed), user)
            for seed, user in enumerate(users)
        ]
        engine = SessionEngine(lp_cache=False)
        engine_results = engine.run(
            _specs(lambda seed: trained_aa_3d.new_session(rng=seed), users)
        )
        _assert_identical(sequential, engine_results)
        assert engine.lp_cache is None
        assert engine.last_metrics.lp_solves == 0


class TestMetrics:
    """Engine and per-session metrics are populated and consistent."""

    def test_session_results_carry_metrics(self, trained_ea_3d, small_anti_3d):
        users = _hidden_users(small_anti_3d.dimension)
        engine = SessionEngine()
        results = engine.run(
            _specs(lambda seed: trained_ea_3d.new_session(rng=seed), users)
        )
        metrics = engine.last_metrics
        assert isinstance(metrics, EngineMetrics)
        assert metrics.sessions == len(users)
        assert metrics.completed + metrics.truncated == len(users)
        assert metrics.rounds_total == sum(r.rounds for r in results)
        assert 0.0 < metrics.batch_occupancy <= 1.0
        assert metrics.per_session == [r.metrics for r in results]
        for result in results:
            assert result.metrics is not None
            assert result.metrics.rounds == result.rounds
            assert result.metrics.batched_rounds > 0

    def test_range_counters_collected(self, trained_ea_3d, small_anti_3d):
        users = _hidden_users(small_anti_3d.dimension)
        engine = SessionEngine()
        results = engine.run(
            _specs(lambda seed: trained_ea_3d.new_session(rng=seed), users)
        )
        metrics = engine.last_metrics
        assert metrics.range_updates >= metrics.rounds_total
        assert metrics.range_clips + metrics.range_rebuilds > 0
        assert 0.0 <= metrics.range_clip_rate <= 1.0
        assert metrics.range_updates == sum(
            r.metrics.range_updates for r in results
        )
        assert metrics.range_solves_avoided == sum(
            r.metrics.range_solves_avoided for r in results
        )
        assert any(
            line.startswith("range updates:")
            for line in metrics.summary_lines()
        )

    def test_shared_cache_accumulates(self, trained_aa_3d, small_anti_3d):
        cache = LPCache()
        users = _hidden_users(small_anti_3d.dimension)
        for _ in range(2):
            engine = SessionEngine(lp_cache=cache)
            engine.run(
                _specs(lambda seed: trained_aa_3d.new_session(rng=seed), users)
            )
        # Second run replays the first run's LP systems from the shared
        # cache: (nearly) every solve is a hit.
        assert engine.last_metrics.lp_hit_rate > 0.9

    def test_rejects_used_sessions(self, trained_ea_3d, small_anti_3d):
        session = trained_ea_3d.new_session(rng=0)
        user = _hidden_users(small_anti_3d.dimension)[0]
        run_session(session, user)
        with pytest.warns(DeprecationWarning), pytest.raises(InteractionError):
            SessionEngine().run([(session, user)])

    def test_max_rounds_truncates(self, trained_ea_3d, small_anti_3d):
        users = _hidden_users(small_anti_3d.dimension)
        engine = SessionEngine(max_rounds=1)
        results = engine.run(
            _specs(lambda seed: trained_ea_3d.new_session(rng=seed), users)
        )
        assert all(r.truncated for r in results)
        assert all(r.rounds == 1 for r in results)
        assert engine.last_metrics.truncated == len(users)


class TestServeBench:
    """The end-to-end serve-bench workload."""

    def test_reports_cache_hits_and_occupancy(self, small_anti_3d):
        report = run_serve_bench(
            small_anti_3d, sessions=6, algorithm="aa", episodes=2, seed=5
        )
        assert len(report.results) == 6
        metrics = report.metrics
        assert metrics.lp_hit_rate > 0
        assert metrics.batch_occupancy > 0
        assert metrics.sessions_per_second > 0
        assert any("occupancy" in line for line in report.lines())
