"""Fault isolation and recovery in the session engine.

One bad session must never kill an engine run: a slot whose question
selection, user callback, update or recommendation raises is returned
as ``status == "failed"`` while every other session runs to completion,
bit-identical to its sequential ``run_session`` replay.  A
``RecoveryPolicy`` additionally retries ``EmptyRegionError`` failures
under ``MajorityVoteSession``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.robust import MajorityVoteSession
from repro.core.session import (
    CandidateBatch,
    InteractiveAlgorithm,
    Question,
    run_session,
)
from repro.errors import ConfigurationError, EmptyRegionError
from repro.serve import RecoveryPolicy, SessionEngine, SessionSpec
from repro.users import NoisyUser, OracleUser


def _spec(factory, user):
    return SessionSpec(factory=factory, user=user)


# -- deterministic test doubles -------------------------------------------------


class ScriptedSession(InteractiveAlgorithm):
    """Asks the pair (0, 1) every round and finishes after ``total`` rounds."""

    def __init__(self, dataset, total: int = 3) -> None:
        super().__init__(dataset)
        self.total = total

    def _propose(self) -> Question:
        return self.question_for(0, 1)

    def _update(self, question: Question, prefers_first: bool) -> None:
        pass

    def _finished(self) -> bool:
        return self.rounds >= self.total

    def recommend(self) -> int:
        return 0


class ExplodingSession(ScriptedSession):
    """Raises ``error`` inside ``_update`` once ``rounds`` reaches ``fail_at``."""

    def __init__(self, dataset, fail_at: int = 1, error=EmptyRegionError) -> None:
        super().__init__(dataset, total=fail_at + 10)
        self.fail_at = fail_at
        self.error = error

    def _update(self, question: Question, prefers_first: bool) -> None:
        if self.rounds >= self.fail_at:
            raise self.error("utility range is empty (scripted)")


class NoRecommendSession(ExplodingSession):
    """A session whose ``recommend`` is as broken as its update."""

    def recommend(self) -> int:
        raise EmptyRegionError("no recommendation either")


class StrictConsistencySession(ScriptedSession):
    """Raises ``EmptyRegionError`` as soon as two answers disagree.

    The strict reading of inconsistency the ISSUE motivates: unlike the
    package's graceful EA/AA sessions, this one treats a contradictory
    answer to the *same* repeated question as an empty utility range.
    """

    def __init__(self, dataset, total: int = 5) -> None:
        super().__init__(dataset, total=total)
        self._first_answer: bool | None = None

    def _update(self, question: Question, prefers_first: bool) -> None:
        if self._first_answer is None:
            self._first_answer = prefers_first
        elif prefers_first != self._first_answer:
            raise EmptyRegionError(
                "utility range is empty; user answers are inconsistent"
            )


class SlowSession(ScriptedSession):
    """Sleeps in question selection so wave timing is observable."""

    def __init__(self, dataset, total: int, delay: float) -> None:
        super().__init__(dataset, total=total)
        self.delay = delay

    def _propose(self) -> Question:
        time.sleep(self.delay)
        return self.question_for(0, 1)


class NoneProposingSession(ScriptedSession):
    """Violates the protocol by proposing no question at all."""

    def _propose(self):
        return None


class BrokenScorer:
    """A ``q_values_many`` scorer that drops one session's score rows."""

    def q_values_many(self, items):
        return [np.zeros(2) for _ in range(len(items) - 1)]


class BatchableSession(ScriptedSession):
    """Exposes a candidate batch routed through ``self.dqn``."""

    def __init__(self, dataset, scorer) -> None:
        super().__init__(dataset, total=2)
        self.dqn = scorer

    def candidate_batch(self) -> CandidateBatch:
        return CandidateBatch(
            state=np.zeros(2),
            actions=np.zeros((2, 2)),
            pairs=((0, 1), (0, 2)),
        )

    def _resolve_choice(self, choice: int) -> Question:
        return self.question_for(0, 1)


class PeriodicFlipUser:
    """Answers ``True`` except on every ``period``-th ``prefers`` call."""

    def __init__(self, period: int) -> None:
        self.period = period
        self.calls = 0

    def prefers(self, p_i, p_j) -> bool:
        self.calls += 1
        return self.calls % self.period != 0


class CrashingUser:
    """A user whose callback itself dies."""

    def prefers(self, p_i, p_j) -> bool:
        raise RuntimeError("user transport dropped")


def _always_true_user():
    return PeriodicFlipUser(period=10**9)


# -- fault isolation ------------------------------------------------------------


class TestFaultIsolation:
    """A dying slot is contained; everything else completes."""

    def test_one_bad_session_does_not_kill_the_run(self, toy):
        pairs = [
            _spec(lambda: ScriptedSession(toy, total=3), _always_true_user()),
            _spec(lambda: ExplodingSession(toy, fail_at=2), _always_true_user()),
            _spec(lambda: ScriptedSession(toy, total=5), _always_true_user()),
        ]
        engine = SessionEngine()
        results = engine.run(pairs)
        assert len(results) == 3
        assert [r.metrics.session_id for r in results] == [0, 1, 2]
        assert results[0].status == "completed" and results[0].rounds == 3
        assert results[2].status == "completed" and results[2].rounds == 5
        bad = results[1]
        assert bad.failed and bad.status == "failed"
        assert "EmptyRegionError" in bad.error
        assert bad.rounds == 2  # the scripted error fires on round 2's update
        metrics = engine.last_metrics
        assert metrics.failed == 1
        assert metrics.completed == 2
        assert metrics.sessions == 3
        assert len(metrics.errors) == 1
        record = metrics.errors[0]
        assert record.session_id == 1
        assert record.error_type == "EmptyRegionError"
        assert not record.retried

    def test_failed_result_keeps_best_effort_recommendation(self, toy):
        engine = SessionEngine()
        results = engine.run(
            [_spec(lambda: ExplodingSession(toy, fail_at=1), _always_true_user())]
        )
        assert results[0].failed
        assert results[0].recommendation_index == 0
        np.testing.assert_array_equal(results[0].recommendation, toy.points[0])

    def test_broken_recommend_degrades_to_sentinel(self, toy):
        engine = SessionEngine()
        results = engine.run(
            [_spec(lambda: NoRecommendSession(toy, fail_at=1), _always_true_user())]
        )
        assert results[0].failed
        assert results[0].recommendation_index == -1
        assert results[0].recommendation.size == 0

    def test_crashing_user_fails_only_its_slot(self, toy):
        engine = SessionEngine()
        results = engine.run(
            [
                _spec(lambda: ScriptedSession(toy, total=2), _always_true_user()),
                _spec(lambda: ScriptedSession(toy, total=2), CrashingUser()),
            ]
        )
        assert results[0].status == "completed"
        assert results[1].failed
        assert "RuntimeError" in results[1].error

    def test_none_question_raises_interaction_error_not_assert(self, toy):
        # Under ``python -O`` a bare assert would vanish and a None
        # question would reach user.prefers; the guard must be a real
        # InteractionError that the fault boundary then contains.
        engine = SessionEngine()
        results = engine.run(
            [_spec(lambda: NoneProposingSession(toy, total=3), _always_true_user())]
        )
        assert results[0].failed
        assert "InteractionError" in results[0].error
        assert engine.last_metrics.errors[0].error_type == "InteractionError"

    def test_healthy_sessions_bit_identical_amid_failures(
        self, trained_ea_3d, small_anti_3d
    ):
        from repro.data.utility import sample_training_utilities

        utilities = sample_training_utilities(3, 3, rng=77)
        users = [OracleUser(u) for u in utilities]
        sequential = [
            run_session(trained_ea_3d.new_session(rng=seed), user)
            for seed, user in enumerate(users)
        ]
        engine = SessionEngine()
        pairs = [
            _spec(lambda: trained_ea_3d.new_session(rng=0), users[0]),
            _spec(
                lambda: ExplodingSession(small_anti_3d, fail_at=1),
                _always_true_user(),
            ),
            _spec(lambda: trained_ea_3d.new_session(rng=1), users[1]),
            _spec(lambda: trained_ea_3d.new_session(rng=2), users[2]),
        ]
        results = engine.run(pairs)
        assert len(results) == 4
        assert results[1].failed
        healthy = [results[0], results[2], results[3]]
        for seq, eng in zip(sequential, healthy):
            assert seq.recommendation_index == eng.recommendation_index
            np.testing.assert_array_equal(seq.recommendation, eng.recommendation)
            assert seq.rounds == eng.rounds
            assert seq.status == eng.status

    def test_noisy_fleet_isolates_the_inconsistent_session(
        self, trained_ea_3d, small_anti_3d
    ):
        # The satellite scenario: NoisyUser fleets where one session's
        # answers turn inconsistent must yield N results, not an abort.
        from repro.data.utility import sample_training_utilities

        utilities = sample_training_utilities(3, 4, rng=88)
        pairs = [
            _spec(
                lambda seed=seed: trained_ea_3d.new_session(rng=seed),
                NoisyUser(utilities[seed], error_rate=0.2, rng=seed),
            )
            for seed in range(3)
        ]
        # The "goes inconsistent" session: a strict algorithm served a
        # heavily-noisy user over a near-tie question (huge temperature
        # makes the flip probability the full error rate).
        bad_user = NoisyUser(
            utilities[3], error_rate=0.5, temperature=1e9, rng=123
        )
        pairs.append(
            _spec(
                lambda: StrictConsistencySession(small_anti_3d, total=64),
                bad_user,
            )
        )
        engine = SessionEngine()
        results = engine.run(pairs)
        assert len(results) == 4
        for result in results[:3]:
            assert result.status in ("completed", "truncated")
            assert not result.failed
        assert results[3].failed
        assert "inconsistent" in results[3].error
        assert engine.last_metrics.failed == 1
        assert engine.last_metrics.completed + engine.last_metrics.truncated == 3

    def test_scorer_row_mismatch_fails_group_with_identity(self, toy):
        scorer = BrokenScorer()
        engine = SessionEngine()
        results = engine.run(
            [
                _spec(lambda: BatchableSession(toy, scorer), _always_true_user()),
                _spec(lambda: BatchableSession(toy, scorer), _always_true_user()),
            ]
        )
        assert all(r.failed for r in results)
        for result in results:
            assert "InteractionError" in result.error
            assert "BrokenScorer" in result.error
            assert "score rows" in result.error
        assert engine.last_metrics.failed == 2


# -- recovery policy ------------------------------------------------------------


class TestRecovery:
    """EmptyRegionError sessions are re-driven under majority voting."""

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(majority_repeats=2)
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(max_retries=0)
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(retry_on=())

    def test_majority_vote_retry_recovers_the_session(self, toy):
        # Every 4th answer is flipped: the strict session dies on the
        # plain run, but under 3-vote majority each flip is outvoted.
        user = PeriodicFlipUser(period=4)
        engine = SessionEngine(recovery=RecoveryPolicy())
        results = engine.run(
            [_spec(lambda: StrictConsistencySession(toy, total=5), user)]
        )
        result = results[0]
        assert result.status == "recovered"
        assert not result.failed
        assert result.metrics.retries == 1
        metrics = engine.last_metrics
        assert metrics.retries == 1
        assert metrics.recovered == 1
        assert metrics.failed == 0
        assert metrics.completed == 1
        assert len(metrics.errors) == 1
        assert metrics.errors[0].retried
        assert metrics.errors[0].error_type == "EmptyRegionError"

    def test_sequential_majority_vote_control(self, toy):
        # The recovery mechanism really is MajorityVoteSession: the same
        # flipping user drives a wrapped session to completion directly.
        user = PeriodicFlipUser(period=4)
        with pytest.raises(EmptyRegionError):
            run_session(StrictConsistencySession(toy, total=5), user)
        wrapped = MajorityVoteSession(
            StrictConsistencySession(toy, total=5), repeats=3
        )
        result = run_session(wrapped, user)
        assert result.status == "completed"

    def test_retries_exhaust_to_failed(self, toy):
        engine = SessionEngine(recovery=RecoveryPolicy(max_retries=1))
        results = engine.run(
            [_spec(lambda: ExplodingSession(toy, fail_at=1), _always_true_user())]
        )
        assert results[0].failed
        metrics = engine.last_metrics
        assert metrics.retries == 1
        assert metrics.recovered == 0
        assert metrics.failed == 1
        assert [e.attempt for e in metrics.errors] == [0, 1]
        assert metrics.errors[0].retried and not metrics.errors[1].retried

    def test_non_matching_errors_are_not_retried(self, toy):
        engine = SessionEngine(recovery=RecoveryPolicy())
        results = engine.run(
            [
                _spec(
                    lambda: ExplodingSession(toy, fail_at=1, error=ValueError),
                    _always_true_user(),
                )
            ]
        )
        assert results[0].failed
        assert engine.last_metrics.retries == 0

    def test_eager_sessions_cannot_be_retried(self, toy):
        # Only factory-submitted pairs can be rebuilt; an eagerly
        # constructed session holds poisoned state.
        engine = SessionEngine(recovery=RecoveryPolicy())
        with pytest.warns(DeprecationWarning):
            results = engine.run(
                [(ExplodingSession(toy, fail_at=1), _always_true_user())]
            )
        assert results[0].failed
        assert engine.last_metrics.retries == 0
        assert not engine.last_metrics.errors[0].retried


# -- wave-latency regression ----------------------------------------------------


class TestWaveLatency:
    """A finished session is finalized in the wave it finishes in."""

    def test_finalized_in_same_wave(self, toy):
        delay = 0.1
        pairs = [
            _spec(
                lambda: SlowSession(toy, total=3, delay=delay),
                _always_true_user(),
            ),
            _spec(lambda: ScriptedSession(toy, total=1), _always_true_user()),
        ]
        engine = SessionEngine()
        results = engine.run(pairs)
        # Every session is finalized in the wave its last answer lands
        # in, so the run needs exactly max(rounds) waves — the old
        # top-of-next-wave detection needed one more.
        assert engine.last_metrics.waves == 3
        fast = results[1]
        assert fast.status == "completed"
        # The fast session's completion latency covers wave 1 only
        # (~one slow question); the regression would charge it a second
        # slow wave (>= 2 * delay).
        assert fast.metrics.wall_seconds < 1.7 * delay
        slow = results[0]
        assert slow.metrics.wall_seconds >= 3 * delay

    def test_interleaved_finishes_keep_input_order(self, toy):
        pairs = [
            _spec(
                lambda total=total: ScriptedSession(toy, total=total),
                _always_true_user(),
            )
            for total in (4, 1, 3, 2)
        ]
        engine = SessionEngine()
        results = engine.run(pairs)
        assert [r.rounds for r in results] == [4, 1, 3, 2]
        assert [r.metrics.session_id for r in results] == [0, 1, 2, 3]
        assert engine.last_metrics.waves == 4
