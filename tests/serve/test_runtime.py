"""Runtime protocol: the seam the service and bench layers depend on.

``Runtime`` is structural (``runtime_checkable``), so conformance is
checked by ``isinstance`` — any scheduler exposing the submit /
as_completed / drain / checkpoint / resume / close surface qualifies,
with no inheritance relationship required.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.serve import (
    ContinuousEngine,
    Runtime,
    SessionEngine,
    ShardedDispatcher,
)

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="ShardedDispatcher needs the fork start method",
)


class TestConformance:
    def test_continuous_engine_is_a_runtime(self):
        with ContinuousEngine() as engine:
            assert isinstance(engine, Runtime)

    @needs_fork
    def test_dispatcher_is_a_runtime(self):
        with ShardedDispatcher(procs=2) as dispatcher:
            assert isinstance(dispatcher, Runtime)

    def test_wave_engine_is_not_a_runtime(self):
        # SessionEngine has no streaming lifecycle; the protocol must
        # not degrade into "any object with a run() method".
        assert not isinstance(SessionEngine(), Runtime)

    def test_protocol_surface(self):
        for name in (
            "submit",
            "as_completed",
            "drain",
            "checkpoint",
            "resume",
            "close",
        ):
            assert callable(getattr(Runtime, name))

    def test_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Runtime()  # type: ignore[misc]
