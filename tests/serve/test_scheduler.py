"""ContinuousEngine: equivalence with the wave engine, plus scheduling.

The continuous scheduler's contract has three parts:

* **Equivalence** — per-session results are identical to the wave
  engine's (and therefore to sequential ``run_session``) over the same
  specs: scheduling order, admission timing and batch composition must
  never perturb a session's transcript.
* **Streaming lifecycle** — ``submit()`` / ``as_completed()`` /
  ``drain()`` with input-order drain results, admission control
  (``max_in_flight``) and backpressure (``max_pending``).
* **Fault isolation and recovery** — the wave engine's guarantees,
  extended to admission (a crashing factory fails only its ticket).
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.baselines import UHRandomSession
from repro.core.session import run_session
from repro.data.utility import sample_training_utilities
from repro.errors import (
    ConfigurationError,
    EmptyRegionError,
    InteractionError,
)
from repro.serve import (
    ContinuousEngine,
    RecoveryPolicy,
    SessionEngine,
    SessionSpec,
)
from repro.serve.spec import OneShotFactory, coerce_spec
from repro.users import OracleUser
from tests.serve.test_faults import (
    BatchableSession,
    BrokenScorer,
    CrashingUser,
    ExplodingSession,
    PeriodicFlipUser,
    ScriptedSession,
    StrictConsistencySession,
    _always_true_user,
    _spec,
)

N_USERS = 6


def _hidden_users(dimension: int, n: int = N_USERS):
    utilities = sample_training_utilities(dimension, n, rng=31_337)
    return [OracleUser(u) for u in utilities]


def _specs(make_algorithm, users):
    return [
        SessionSpec(
            factory=lambda seed=seed: make_algorithm(seed),
            user=user,
            seed=seed,
        )
        for seed, user in enumerate(users)
    ]


def _outcome(result):
    return (
        result.recommendation_index,
        result.rounds,
        result.truncated,
        result.status,
    )


class TestSessionSpec:
    """The canonical unit of work and its legacy-tuple coercion."""

    def test_factory_must_be_callable(self, toy):
        with pytest.raises(ConfigurationError):
            SessionSpec(
                factory=ScriptedSession(toy, total=1),  # type: ignore[arg-type]
                user=_always_true_user(),
            )

    def test_seed_and_tags_carried(self, toy):
        spec = SessionSpec(
            factory=lambda: ScriptedSession(toy, total=1),
            user=_always_true_user(),
            seed=41,
            tags={"tenant": "acme"},
        )
        assert spec.seed == 41
        assert spec.tags["tenant"] == "acme"
        assert spec.retryable

    def test_tuple_coercion_warns_and_wraps_eager_sessions(self, toy):
        session = ScriptedSession(toy, total=1)
        with pytest.warns(DeprecationWarning):
            spec = coerce_spec((session, _always_true_user()))
        assert isinstance(spec.factory, OneShotFactory)
        assert not spec.retryable
        assert spec.build() is session
        # The wrapped instance holds real state: a second build must
        # refuse rather than re-drive a poisoned session.
        with pytest.raises(ConfigurationError):
            spec.build()

    def test_tuple_coercion_keeps_factories_retryable(self, toy):
        with pytest.warns(DeprecationWarning):
            spec = coerce_spec(
                (lambda: ScriptedSession(toy, total=1), _always_true_user())
            )
        assert spec.retryable
        assert spec.build().rounds == 0

    def test_non_tuple_rejected(self):
        with pytest.raises(ConfigurationError):
            coerce_spec("not a session")  # type: ignore[arg-type]


class TestEquivalence:
    """Same specs ⇒ same per-session results, wave or continuous."""

    def _run_both(self, make_algorithm, dimension, **continuous_kwargs):
        users = _hidden_users(dimension)
        wave = SessionEngine()
        wave_results = wave.run(_specs(make_algorithm, users))
        continuous_kwargs.setdefault("max_in_flight", 3)
        with ContinuousEngine(**continuous_kwargs) as engine:
            continuous_results = engine.run(_specs(make_algorithm, users))
        assert [_outcome(r) for r in wave_results] == [
            _outcome(r) for r in continuous_results
        ]
        for wave_result, cont_result in zip(
            wave_results, continuous_results
        ):
            np.testing.assert_array_equal(
                wave_result.recommendation, cont_result.recommendation
            )
        return wave_results, continuous_results

    def test_ea_equivalent_to_wave(self, trained_ea_3d):
        self._run_both(lambda seed: trained_ea_3d.new_session(rng=seed), 3)

    def test_aa_equivalent_to_wave(self, trained_aa_3d):
        self._run_both(lambda seed: trained_aa_3d.new_session(rng=seed), 3)

    def test_baseline_equivalent_to_wave(self, small_anti_3d):
        self._run_both(
            lambda seed: UHRandomSession(
                small_anti_3d, epsilon=0.1, rng=seed
            ),
            3,
        )

    def test_equivalent_to_sequential(self, trained_ea_3d):
        users = _hidden_users(3)
        sequential = [
            run_session(trained_ea_3d.new_session(rng=seed), user)
            for seed, user in enumerate(users)
        ]
        with ContinuousEngine(max_in_flight=2) as engine:
            results = engine.run(
                _specs(lambda seed: trained_ea_3d.new_session(rng=seed), users)
            )
        for seq, cont in zip(sequential, results):
            assert seq.recommendation_index == cont.recommendation_index
            assert seq.rounds == cont.rounds
            assert seq.truncated == cont.truncated

    def test_workers_do_not_change_results(self, trained_ea_3d):
        users = _hidden_users(3)
        make = lambda seed: trained_ea_3d.new_session(rng=seed)  # noqa: E731
        with ContinuousEngine(max_in_flight=3) as inline:
            inline_results = inline.run(_specs(make, users))
        with ContinuousEngine(max_in_flight=3, workers=4) as pooled:
            pooled_results = pooled.run(_specs(make, users))
        assert [_outcome(r) for r in inline_results] == [
            _outcome(r) for r in pooled_results
        ]

    def test_trace_equivalent_to_wave(self, trained_ea_3d):
        users = _hidden_users(3, n=3)
        make = lambda seed: trained_ea_3d.new_session(rng=seed)  # noqa: E731
        wave_results = SessionEngine().run(_specs(make, users), trace=True)
        with ContinuousEngine(max_in_flight=2) as engine:
            continuous_results = engine.run(_specs(make, users), trace=True)
        for wave_result, cont_result in zip(
            wave_results, continuous_results
        ):
            assert [
                (r.round_number, r.recommendation_index)
                for r in wave_result.trace
            ] == [
                (r.round_number, r.recommendation_index)
                for r in cont_result.trace
            ]


class TestStreamingLifecycle:
    """submit / as_completed / drain semantics."""

    def test_drain_returns_submission_order(self, toy):
        with ContinuousEngine(max_in_flight=2) as engine:
            for total in (4, 1, 3, 2):
                engine.submit(
                    _spec(
                        lambda total=total: ScriptedSession(toy, total=total),
                        _always_true_user(),
                    )
                )
            results = engine.drain()
        assert [r.rounds for r in results] == [4, 1, 3, 2]
        assert [r.metrics.session_id for r in results] == [0, 1, 2, 3]

    def test_as_completed_streams_everything(self, toy):
        with ContinuousEngine(max_in_flight=2) as engine:
            tickets = [
                engine.submit(
                    _spec(
                        lambda total=total: ScriptedSession(toy, total=total),
                        _always_true_user(),
                    )
                )
                for total in (3, 1, 2)
            ]
            assert tickets == [0, 1, 2]
            streamed = list(engine.as_completed())
            # Completion order: shortest sessions finish first.
            assert sorted(r.rounds for r in streamed) == [1, 2, 3]
            assert streamed[0].rounds == 1
            # drain() still reports the epoch, in submission order.
            drained = engine.drain()
            assert [r.rounds for r in drained] == [3, 1, 2]

    def test_drain_epochs_are_independent(self, toy):
        with ContinuousEngine(max_in_flight=4) as engine:
            first = engine.run(
                [_spec(lambda: ScriptedSession(toy, total=2),
                       _always_true_user())]
            )
            second = engine.run(
                [_spec(lambda: ScriptedSession(toy, total=3),
                       _always_true_user())]
            )
        assert [r.rounds for r in first] == [2]
        assert [r.rounds for r in second] == [3]
        # Tickets keep counting across epochs.
        assert second[0].metrics.session_id == 1

    def test_closed_engine_refuses_work(self, toy):
        engine = ContinuousEngine()
        engine.close()
        # Lifecycle misuse, not misconfiguration: submitting to a
        # closed engine is an InteractionError.
        with pytest.raises(InteractionError, match="closed"):
            engine.submit(
                _spec(lambda: ScriptedSession(toy, total=1),
                      _always_true_user())
            )
        engine.close()  # idempotent

    def test_poll_completed_consumes_results(self, toy):
        with ContinuousEngine(max_in_flight=2) as engine:
            for total in (2, 1):
                engine.submit(
                    _spec(
                        lambda total=total: ScriptedSession(toy, total=total),
                        _always_true_user(),
                    )
                )
            polled = []
            while engine.has_work:
                engine.step()
                polled.extend(engine.poll_completed())
            polled.extend(engine.poll_completed())
            assert sorted(r.rounds for r in polled) == [1, 2]
            # Consumed: the next poll and the next drain see nothing.
            assert engine.poll_completed() == []
            assert engine.drain() == []

    def test_has_work_and_in_flight_tickets(self, toy):
        with ContinuousEngine(max_in_flight=2) as engine:
            assert not engine.has_work
            assert engine.in_flight_tickets == ()
            engine.submit(
                _spec(lambda: ScriptedSession(toy, total=3),
                      _always_true_user())
            )
            assert engine.has_work
            engine.step()
            assert engine.in_flight_tickets == (0,)
            while engine.has_work:
                engine.step()
            engine.poll_completed()
            assert engine.in_flight_tickets == ()

    def test_max_in_flight_bounds_batches(self, toy):
        scorer_sessions = 8
        with ContinuousEngine(max_in_flight=3) as engine:
            scorer = _SharedScorer()
            results = engine.run(
                [
                    _spec(
                        lambda: BatchableSession(toy, scorer),
                        _always_true_user(),
                    )
                    for _ in range(scorer_sessions)
                ]
            )
        assert len(results) == scorer_sessions
        assert engine.metrics.peak_batch <= 3
        assert scorer.max_rows <= 3

    def test_backpressure_bounds_pending_queue(self, toy):
        with ContinuousEngine(max_in_flight=2, max_pending=3) as engine:
            for _ in range(12):
                engine.submit(
                    _spec(lambda: ScriptedSession(toy, total=2),
                          _always_true_user())
                )
                assert len(engine._pending) <= 3
            results = engine.drain()
        assert len(results) == 12

    def test_occupancy_metric_populated(self, trained_ea_3d):
        users = _hidden_users(3)
        with ContinuousEngine(max_in_flight=2) as engine:
            engine.run(
                _specs(lambda seed: trained_ea_3d.new_session(rng=seed), users)
            )
        metrics = engine.last_metrics
        assert metrics is not None
        assert metrics.ticks > 0
        assert metrics.in_flight_cap == 2
        assert 0.0 < metrics.occupancy <= 1.0
        assert metrics.occupancy == metrics.batched_rows / (
            metrics.ticks * metrics.in_flight_cap
        )
        assert any(
            line.startswith("ticks:") for line in metrics.summary_lines()
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ContinuousEngine(max_in_flight=0)
        with pytest.raises(ConfigurationError):
            ContinuousEngine(max_pending=0)
        with pytest.raises(ConfigurationError):
            ContinuousEngine(workers=-1)


class _SharedScorer:
    """A q_values_many scorer recording the widest batch it saw."""

    def __init__(self) -> None:
        self.max_rows = 0

    def q_values_many(self, items):
        self.max_rows = max(self.max_rows, len(items))
        return [np.zeros(len(item[1])) for item in items]


class TestFaultIsolation:
    """One bad ticket cannot take down the scheduler."""

    def test_one_bad_session_does_not_kill_the_run(self, toy):
        with ContinuousEngine(max_in_flight=2) as engine:
            results = engine.run(
                [
                    _spec(lambda: ScriptedSession(toy, total=3),
                          _always_true_user()),
                    _spec(lambda: ExplodingSession(toy, fail_at=2),
                          _always_true_user()),
                    _spec(lambda: ScriptedSession(toy, total=5),
                          _always_true_user()),
                ]
            )
        assert [r.metrics.session_id for r in results] == [0, 1, 2]
        assert results[0].status == "completed" and results[0].rounds == 3
        assert results[2].status == "completed" and results[2].rounds == 5
        assert results[1].failed
        assert "EmptyRegionError" in results[1].error
        metrics = engine.metrics
        assert metrics.failed == 1
        assert metrics.completed == 2
        assert metrics.errors[0].session_id == 1

    def test_crashing_user_fails_only_its_slot(self, toy):
        with ContinuousEngine(max_in_flight=2) as engine:
            results = engine.run(
                [
                    _spec(lambda: ScriptedSession(toy, total=2),
                          _always_true_user()),
                    _spec(lambda: ScriptedSession(toy, total=2),
                          CrashingUser()),
                ]
            )
        assert results[0].status == "completed"
        assert results[1].failed
        assert "RuntimeError" in results[1].error

    def test_scorer_row_mismatch_fails_group(self, toy):
        scorer = BrokenScorer()
        with ContinuousEngine(max_in_flight=4) as engine:
            results = engine.run(
                [
                    _spec(lambda: BatchableSession(toy, scorer),
                          _always_true_user()),
                    _spec(lambda: BatchableSession(toy, scorer),
                          _always_true_user()),
                ]
            )
        assert all(r.failed for r in results)
        assert engine.metrics.failed == 2

    def test_crashing_factory_fails_only_its_ticket(self, toy):
        def bomb():
            raise RuntimeError("factory exploded")

        with ContinuousEngine(max_in_flight=2) as engine:
            results = engine.run(
                [
                    _spec(lambda: ScriptedSession(toy, total=2),
                          _always_true_user()),
                    _spec(bomb, _always_true_user()),
                    _spec(lambda: ScriptedSession(toy, total=3),
                          _always_true_user()),
                ]
            )
        assert results[0].status == "completed"
        assert results[2].status == "completed"
        assert results[1].failed
        assert results[1].recommendation_index == -1
        assert "factory exploded" in results[1].error

    def test_stale_session_fails_only_its_ticket(self, toy):
        stale = ScriptedSession(toy, total=2)
        run_session(stale, _always_true_user())
        with pytest.warns(DeprecationWarning):
            specs = [
                _spec(lambda: ScriptedSession(toy, total=2),
                      _always_true_user()),
                coerce_spec((stale, _always_true_user())),
            ]
        with ContinuousEngine(max_in_flight=2) as engine:
            results = engine.run(specs)
        assert results[0].status == "completed"
        assert results[1].failed
        assert "already been driven" in results[1].error


class TestRecovery:
    """RecoveryPolicy semantics under the continuous scheduler."""

    def test_majority_vote_retry_recovers_the_session(self, toy):
        user = PeriodicFlipUser(period=4)
        with ContinuousEngine(recovery=RecoveryPolicy()) as engine:
            results = engine.run(
                [_spec(lambda: StrictConsistencySession(toy, total=5), user)]
            )
        result = results[0]
        assert result.status == "recovered"
        assert result.metrics.retries == 1
        metrics = engine.metrics
        assert metrics.retries == 1
        assert metrics.recovered == 1
        assert metrics.failed == 0
        assert metrics.errors[0].retried

    def test_retries_exhaust_to_failed(self, toy):
        with ContinuousEngine(
            recovery=RecoveryPolicy(max_retries=1)
        ) as engine:
            results = engine.run(
                [_spec(lambda: ExplodingSession(toy, fail_at=1),
                       _always_true_user())]
            )
        assert results[0].failed
        assert engine.metrics.retries == 1
        assert [e.attempt for e in engine.metrics.errors] == [0, 1]

    def test_eager_sessions_cannot_be_retried(self, toy):
        with pytest.warns(DeprecationWarning):
            spec = coerce_spec(
                (ExplodingSession(toy, fail_at=1), _always_true_user())
            )
        with ContinuousEngine(recovery=RecoveryPolicy()) as engine:
            results = engine.run([spec])
        assert results[0].failed
        assert engine.metrics.retries == 0

    def test_recovery_equivalent_to_wave(self, toy):
        def build(engine_cls, **kwargs):
            user = PeriodicFlipUser(period=4)
            specs = [
                _spec(lambda: StrictConsistencySession(toy, total=5), user),
                _spec(lambda: ExplodingSession(toy, fail_at=1, error=ValueError),
                      _always_true_user()),
                _spec(lambda: ScriptedSession(toy, total=3),
                      _always_true_user()),
            ]
            engine = engine_cls(recovery=RecoveryPolicy(), **kwargs)
            results = engine.run(specs)
            if isinstance(engine, ContinuousEngine):
                engine.close()
            return results

        wave = build(SessionEngine)
        continuous = build(ContinuousEngine, max_in_flight=2)
        assert [r.status for r in wave] == [r.status for r in continuous]
        assert [r.rounds for r in wave] == [r.rounds for r in continuous]


class TestRecoveryRaisesOnMissing:
    def test_empty_region_default_policy(self):
        policy = RecoveryPolicy()
        assert policy.should_retry(EmptyRegionError("x"), 0)
        assert not policy.should_retry(ValueError("x"), 0)


class _RecordingEvent(threading.Event):
    """A wake event that logs the driver thread's clear()/wait() order."""

    def __init__(self):
        super().__init__()
        self.driver_calls: list[str] = []

    def _record(self, name: str) -> None:
        if threading.current_thread().name == "repro-serve-driver":
            self.driver_calls.append(name)

    def clear(self) -> None:
        self._record("clear")
        super().clear()

    def wait(self, timeout=None) -> bool:
        self._record("wait")
        return super().wait(timeout)


class TestDriverWakeup:
    """Regression: the driver loop must clear its wake event *before*
    checking for work.  The old wait-then-clear ordering could erase a
    ``set()`` racing in between ``wait()`` returning and the clear,
    swallowing a wake-up and costing an ``asubmit`` a full poll timeout.
    """

    def test_driver_clears_before_checking(self, toy):
        async def main(engine):
            return await engine.asubmit(
                _spec(lambda: ScriptedSession(toy, total=3),
                      _always_true_user())
            )

        with ContinuousEngine(max_in_flight=8) as engine:
            wake = _RecordingEvent()
            engine._wake = wake
            result = asyncio.run(main(engine))

        assert result.status == "completed"
        assert result.rounds == 3
        calls = wake.driver_calls
        assert calls, "driver never touched the wake event"
        # clear-before-check: every loop iteration's first Event
        # operation is clear().  Under the buggy wait-then-clear
        # ordering the recorded sequence started with wait().
        assert calls[0] == "clear"
        # No iteration may open with a bare wait(): a wait is always
        # preceded by the same iteration's clear.
        assert all(
            calls[i - 1] == "clear"
            for i in range(1, len(calls))
            if calls[i] == "wait"
        )
