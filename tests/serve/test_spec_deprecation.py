"""The legacy ``(algorithm, user)`` tuple warns once per call site."""

from __future__ import annotations

import warnings

import pytest

from repro.baselines import UHRandomSession
from repro.serve import (
    ContinuousEngine,
    SessionEngine,
    reset_tuple_deprecation_warnings,
)
from repro.users import OracleUser


def _tuple_source(dataset):
    user = OracleUser([0.5, 0.3, 0.2])
    return (lambda: UHRandomSession(dataset, 0.1, rng=4), user)


def _run_wave(dataset):
    # One distinct call site for the wave engine.
    return SessionEngine(max_rounds=8).run([_tuple_source(dataset)])


def _run_continuous(dataset):
    # One distinct call site for the continuous engine.
    with ContinuousEngine(max_rounds=8) as engine:
        return engine.run([_tuple_source(dataset)])


@pytest.mark.parametrize("runner", [_run_wave, _run_continuous])
def test_legacy_tuple_warns_through_engine(small_anti_3d, runner):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        results = runner(small_anti_3d)
    assert len(results) == 1
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert "SessionSpec" in str(deprecations[0].message)


@pytest.mark.parametrize("runner", [_run_wave, _run_continuous])
def test_warning_fires_once_per_call_site(small_anti_3d, runner):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        runner(small_anti_3d)  # first call from this site: warns
        runner(small_anti_3d)  # same site again: silent
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1


def test_distinct_call_sites_each_warn(small_anti_3d):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _run_wave(small_anti_3d)
        _run_continuous(small_anti_3d)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 2


def test_reset_reopens_all_sites(small_anti_3d):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _run_wave(small_anti_3d)
        reset_tuple_deprecation_warnings()
        _run_wave(small_anti_3d)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 2
