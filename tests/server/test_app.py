"""SessionService endpoint behaviour over real sockets.

Every test talks to an in-process asyncio server through the same
client codec the load generator uses, so the full request path —
parsing, routing, fault mapping, keep-alive — is exercised, not just
the handler functions.
"""

from __future__ import annotations

import asyncio
import contextlib

import numpy as np
import pytest

from repro.core.session import run_session
from repro.data.utility import sample_training_utilities
from repro.persist import MemorySessionStore
from repro.registry import make_session
from repro.server import SessionService
from repro.server.http import request
from repro.users import OracleUser

EPSILON = 0.1


@contextlib.asynccontextmanager
async def serving(dataset, **kwargs):
    service = SessionService(dataset, epsilon=EPSILON, **kwargs)
    server = await service.serve("127.0.0.1", 0)
    bound = server.sockets[0].getsockname()
    try:
        yield service, bound[0], bound[1]
    finally:
        server.close()
        await server.wait_closed()
        service.close()


def _utility(seed=0):
    return sample_training_utilities(3, 1, rng=60 + seed)[0]


async def _drive_over_http(host, port, session_id, utility, cap=40):
    """Answer questions until the server reports the session finished."""
    base = f"/sessions/{session_id}"
    transcript = []
    finished = False
    while not finished and len(transcript) < cap:
        status, question = await request(host, port, "GET", f"{base}/question")
        assert status == 200, question
        p_i = np.asarray(question["p_i"], dtype=float)
        p_j = np.asarray(question["p_j"], dtype=float)
        answer = bool(float(utility @ p_i) >= float(utility @ p_j))
        status, body = await request(
            host, port, "POST", f"{base}/answer", {"prefers_first": answer}
        )
        assert status == 200, body
        transcript.append(
            (body["rounds"], question["index_i"], question["index_j"], answer)
        )
        finished = body["finished"]
    return transcript


def _reference(dataset, seed, utility):
    session = make_session("uh-random", dataset, EPSILON, rng=seed)
    result = run_session(session, OracleUser(utility))
    return result


class TestInteractiveFlow:
    def test_matches_sequential_run_exactly(self, small_anti_3d):
        utility = _utility()

        async def main():
            async with serving(small_anti_3d) as (_, host, port):
                status, body = await request(
                    host,
                    port,
                    "POST",
                    "/sessions",
                    {"algorithm": "uh-random", "seed": 21},
                )
                assert status == 201, body
                sid = body["session_id"]
                await _drive_over_http(host, port, sid, utility)
                status, rec = await request(
                    host, port, "GET", f"/sessions/{sid}/recommendation"
                )
                assert status == 200, rec
                return rec

        rec = asyncio.run(main())
        reference = _reference(small_anti_3d, 21, utility)
        assert rec["status"] == "completed"
        assert rec["rounds"] == reference.rounds
        assert rec["index"] == reference.recommendation_index
        np.testing.assert_allclose(
            np.asarray(rec["point"]), reference.recommendation
        )

    def test_question_get_is_idempotent(self, small_anti_3d):
        async def main():
            async with serving(small_anti_3d) as (_, host, port):
                _, body = await request(
                    host, port, "POST", "/sessions", {"seed": 4}
                )
                sid = body["session_id"]
                _, first = await request(
                    host, port, "GET", f"/sessions/{sid}/question"
                )
                _, second = await request(
                    host, port, "GET", f"/sessions/{sid}/question"
                )
                return first, second

        first, second = asyncio.run(main())
        assert (first["index_i"], first["index_j"]) == (
            second["index_i"],
            second["index_j"],
        )
        assert first["round"] == second["round"]

    def test_delete_forgets_the_session(self, small_anti_3d):
        async def main():
            async with serving(small_anti_3d) as (_, host, port):
                _, body = await request(host, port, "POST", "/sessions", {})
                sid = body["session_id"]
                status, _ = await request(
                    host, port, "DELETE", f"/sessions/{sid}"
                )
                assert status == 200
                status, _ = await request(
                    host, port, "GET", f"/sessions/{sid}/question"
                )
                return status

        assert asyncio.run(main()) == 404


class TestOracleMode:
    def test_matches_sequential_run_exactly(self, small_anti_3d):
        utility = _utility(3)

        async def main():
            async with serving(small_anti_3d) as (_, host, port):
                status, body = await request(
                    host,
                    port,
                    "POST",
                    "/sessions",
                    {
                        "algorithm": "uh-random",
                        "seed": 33,
                        "mode": "oracle",
                        "utility": [float(x) for x in utility],
                    },
                )
                assert status == 201, body
                assert body["mode"] == "oracle"
                sid = body["session_id"]
                status, rec = await request(
                    host, port, "GET", f"/sessions/{sid}/recommendation"
                )
                assert status == 200, rec
                return rec

        rec = asyncio.run(main())
        reference = _reference(small_anti_3d, 33, utility)
        assert rec["status"] == "completed"
        assert rec["rounds"] == reference.rounds
        assert rec["index"] == reference.recommendation_index

    def test_oracle_rejects_wrong_utility_shape(self, small_anti_3d):
        async def main():
            async with serving(small_anti_3d) as (_, host, port):
                status, body = await request(
                    host,
                    port,
                    "POST",
                    "/sessions",
                    {"mode": "oracle", "utility": [0.5, 0.5]},
                )
                return status, body

        status, body = asyncio.run(main())
        assert status == 400
        assert "weights" in body["error"]

    def test_oracle_session_rejects_interactive_verbs(self, small_anti_3d):
        utility = _utility(5)

        async def main():
            async with serving(small_anti_3d) as (_, host, port):
                _, body = await request(
                    host,
                    port,
                    "POST",
                    "/sessions",
                    {"mode": "oracle", "utility": [float(x) for x in utility]},
                )
                sid = body["session_id"]
                status, _ = await request(
                    host, port, "GET", f"/sessions/{sid}/question"
                )
                return status

        assert asyncio.run(main()) == 409


class TestRuntimeSeam:
    """The service depends on the Runtime protocol, not on a concrete
    engine: a ShardedDispatcher behind ``runtime=`` serves oracle
    sessions through the collector-thread fallback (no ``asubmit``)
    with sequential-identical results."""

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="ShardedDispatcher needs the fork start method",
    )
    def test_oracle_through_dispatcher_matches_sequential(
        self, small_anti_3d
    ):
        from repro.serve import ShardedDispatcher

        utility = _utility(7)
        runtime = ShardedDispatcher(procs=1, max_rounds=128)

        async def main():
            async with serving(small_anti_3d, runtime=runtime) as (
                service,
                host,
                port,
            ):
                assert service.engine is runtime
                status, body = await request(
                    host,
                    port,
                    "POST",
                    "/sessions",
                    {
                        "algorithm": "uh-random",
                        "seed": 44,
                        "mode": "oracle",
                        "utility": [float(x) for x in utility],
                    },
                )
                assert status == 201, body
                sid = body["session_id"]
                status, rec = await request(
                    host, port, "GET", f"/sessions/{sid}/recommendation"
                )
                assert status == 200, rec
                return rec

        rec = asyncio.run(main())
        reference = _reference(small_anti_3d, 44, utility)
        assert rec["status"] == "completed"
        assert rec["rounds"] == reference.rounds
        assert rec["index"] == reference.recommendation_index


class TestFaultMapping:
    def test_unknown_session_is_404(self, small_anti_3d):
        async def main():
            async with serving(small_anti_3d) as (_, host, port):
                status, _ = await request(
                    host, port, "GET", "/sessions/nope/question"
                )
                return status

        assert asyncio.run(main()) == 404

    def test_unknown_endpoint_is_404(self, small_anti_3d):
        async def main():
            async with serving(small_anti_3d) as (_, host, port):
                status, _ = await request(host, port, "GET", "/frobnicate")
                return status

        assert asyncio.run(main()) == 404

    def test_answer_without_open_question_is_409(self, small_anti_3d):
        async def main():
            async with serving(small_anti_3d) as (_, host, port):
                _, body = await request(host, port, "POST", "/sessions", {})
                sid = body["session_id"]
                status, body = await request(
                    host,
                    port,
                    "POST",
                    f"/sessions/{sid}/answer",
                    {"prefers_first": True},
                )
                return status, body

        status, body = asyncio.run(main())
        assert status == 409
        assert "no open question" in body["error"]

    def test_early_recommendation_is_409_unless_forced(self, small_anti_3d):
        async def main():
            async with serving(small_anti_3d) as (_, host, port):
                _, body = await request(
                    host, port, "POST", "/sessions", {"seed": 8}
                )
                sid = body["session_id"]
                blocked, _ = await request(
                    host, port, "GET", f"/sessions/{sid}/recommendation"
                )
                forced, rec = await request(
                    host,
                    port,
                    "GET",
                    f"/sessions/{sid}/recommendation?force=1",
                )
                return blocked, forced, rec

        blocked, forced, rec = asyncio.run(main())
        assert blocked == 409
        assert forced == 200
        assert rec["status"] == "running"

    def test_unknown_algorithm_is_400(self, small_anti_3d):
        async def main():
            async with serving(small_anti_3d) as (_, host, port):
                status, body = await request(
                    host,
                    port,
                    "POST",
                    "/sessions",
                    {"algorithm": "does-not-exist"},
                )
                return status, body

        status, body = asyncio.run(main())
        assert status == 400
        assert "error" in body

    def test_rl_family_without_agent_is_400(self, small_anti_3d):
        async def main():
            async with serving(small_anti_3d) as (_, host, port):
                status, body = await request(
                    host, port, "POST", "/sessions", {"algorithm": "ea"}
                )
                return status, body

        status, body = asyncio.run(main())
        assert status == 400
        assert "agent" in body["error"]

    def test_resume_without_store_is_400(self, small_anti_3d):
        async def main():
            async with serving(small_anti_3d) as (_, host, port):
                status, body = await request(
                    host, port, "POST", "/sessions", {"resume": "x"}
                )
                return status, body

        status, body = asyncio.run(main())
        assert status == 400
        assert "store" in body["error"]


class TestCrashResume:
    def test_dialogue_survives_a_service_restart(self, small_anti_3d):
        """Answer k rounds against one service instance, kill it, resume
        the same session id on a second instance sharing the store, and
        the stitched dialogue must equal the uninterrupted local run."""
        utility = _utility(9)
        store = MemorySessionStore()

        async def first_half():
            async with serving(small_anti_3d, store=store) as (_, host, port):
                _, body = await request(
                    host, port, "POST", "/sessions", {"seed": 77}
                )
                sid = body["session_id"]
                base = f"/sessions/{sid}"
                head = []
                for _ in range(2):
                    _, question = await request(
                        host, port, "GET", f"{base}/question"
                    )
                    p_i = np.asarray(question["p_i"], dtype=float)
                    p_j = np.asarray(question["p_j"], dtype=float)
                    answer = bool(float(utility @ p_i) >= float(utility @ p_j))
                    _, body = await request(
                        host,
                        port,
                        "POST",
                        f"{base}/answer",
                        {"prefers_first": answer},
                    )
                    head.append(
                        (
                            body["rounds"],
                            question["index_i"],
                            question["index_j"],
                            answer,
                        )
                    )
                return sid, head

        async def second_half(sid):
            async with serving(small_anti_3d, store=store) as (_, host, port):
                status, body = await request(
                    host, port, "POST", "/sessions", {"resume": sid}
                )
                assert status == 200, body
                assert body["resumed"] is True
                assert body["rounds"] == 2
                tail = await _drive_over_http(host, port, sid, utility)
                _, rec = await request(
                    host, port, "GET", f"/sessions/{sid}/recommendation"
                )
                return tail, rec

        sid, head = asyncio.run(first_half())
        tail, rec = asyncio.run(second_half(sid))

        reference = _reference(small_anti_3d, 77, utility)
        session = make_session("uh-random", small_anti_3d, EPSILON, rng=77)
        local = []
        user = OracleUser(utility)
        while not session.finished:
            question = session.next_question()
            answer = bool(user.prefers(question.p_i, question.p_j))
            session.observe(answer)
            local.append(
                (session.rounds, question.index_i, question.index_j, answer)
            )
        assert head + tail == local
        assert rec["rounds"] == reference.rounds
        assert rec["index"] == reference.recommendation_index

    def test_resume_of_unknown_id_is_404(self, small_anti_3d):
        async def main():
            async with serving(
                small_anti_3d, store=MemorySessionStore()
            ) as (_, host, port):
                status, _ = await request(
                    host, port, "POST", "/sessions", {"resume": "ghost"}
                )
                return status

        assert asyncio.run(main()) == 404


class TestHealthz:
    def test_reports_dataset_and_session_counts(self, small_anti_3d):
        async def main():
            async with serving(small_anti_3d) as (_, host, port):
                _, before = await request(host, port, "GET", "/healthz")
                await request(host, port, "POST", "/sessions", {})
                _, after = await request(host, port, "GET", "/healthz")
                return before, after

        before, after = asyncio.run(main())
        assert before["status"] == "ok"
        assert before["interactive_sessions"] == 0
        assert after["interactive_sessions"] == 1
