"""The hand-rolled HTTP/1.1 codec, both directions."""

from __future__ import annotations

import asyncio

import pytest

from repro.server.http import (
    MAX_BODY_BYTES,
    BadRequestError,
    Request,
    Response,
    read_request,
    render_response,
)


def _parse(raw: bytes):
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(main())


class TestReadRequest:
    def test_parses_method_path_query_headers_body(self):
        raw = (
            b"POST /sessions/s1/answer?force=1 HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 24\r\n"
            b"\r\n"
            b'{"prefers_first": false}'
        )
        request = _parse(raw)
        assert request.method == "POST"
        assert request.path == "/sessions/s1/answer"
        assert request.query == {"force": "1"}
        assert request.headers["content-type"] == "application/json"
        assert request.json() == {"prefers_first": False}

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_empty_body_parses_as_empty_object(self):
        request = _parse(b"GET /healthz HTTP/1.1\r\n\r\n")
        assert request.json() == {}

    def test_malformed_request_line_rejected(self):
        with pytest.raises(BadRequestError, match="request line"):
            _parse(b"NONSENSE\r\n\r\n")

    def test_truncated_head_rejected(self):
        with pytest.raises(BadRequestError, match="truncated"):
            _parse(b"GET / HTTP/1.1\r\nHost: x")

    def test_oversized_body_rejected(self):
        raw = (
            b"POST / HTTP/1.1\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        with pytest.raises(BadRequestError, match="exceeds the cap"):
            _parse(raw)

    def test_malformed_content_length_rejected(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
        with pytest.raises(BadRequestError, match="Content-Length"):
            _parse(raw)

    def test_non_json_body_raises_on_json_access(self):
        raw = (
            b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz"
        )
        request = _parse(raw)
        with pytest.raises(BadRequestError, match="not JSON"):
            request.json()


class TestKeepAlive:
    def test_default_is_keep_alive(self):
        assert Request(method="GET", path="/").keep_alive

    def test_connection_close_honoured(self):
        request = Request(
            method="GET", path="/", headers={"connection": "close"}
        )
        assert not request.keep_alive


class TestRenderResponse:
    def test_json_response_has_content_length(self):
        raw = render_response(Response.json({"ok": True}))
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert b"Connection: keep-alive" in head

    def test_error_shape_is_uniform(self):
        raw = render_response(
            Response.error(404, "nope"), keep_alive=False
        )
        assert b"HTTP/1.1 404 Not Found" in raw
        assert b'{"error": "nope"}' in raw
        assert b"Connection: close" in raw
