"""The HTTP load generator: 16 concurrent sessions, zero failures."""

from __future__ import annotations

import json

import pytest

from repro.errors import DataError
from repro.persist import MemorySessionStore
from repro.server import run_http_bench, write_http_bench_snapshot


class TestRunHttpBench:
    def test_16_concurrent_interactive_sessions(self, small_anti_3d):
        report = run_http_bench(
            small_anti_3d,
            sessions=16,
            concurrency=16,
            mode="interactive",
        )
        assert report.completed == 16
        assert report.failed == 0
        assert report.errors == []
        assert report.rounds_total > 0
        assert report.requests > 2 * 16  # create + rounds + recommendation
        assert report.p50_ms > 0
        assert report.p99_ms >= report.p95_ms >= report.p50_ms

    def test_16_concurrent_oracle_sessions(self, small_anti_3d):
        report = run_http_bench(
            small_anti_3d,
            sessions=16,
            concurrency=16,
            mode="oracle",
        )
        assert report.completed == 16
        assert report.failed == 0
        assert report.rounds_total > 0
        # Oracle mode: exactly create + recommendation per session.
        assert report.requests == 2 * 16

    def test_store_collects_one_checkpoint_per_session(self, small_anti_3d):
        store = MemorySessionStore()
        report = run_http_bench(
            small_anti_3d,
            sessions=4,
            concurrency=4,
            mode="interactive",
            service_kwargs={"store": store},
        )
        assert report.failed == 0
        assert len(store.ids()) == 4

    def test_rejects_unknown_mode(self, small_anti_3d):
        with pytest.raises(DataError, match="mode"):
            run_http_bench(small_anti_3d, mode="chaos")

    def test_needs_dataset_or_target(self):
        with pytest.raises(DataError, match="dataset"):
            run_http_bench()


class TestSnapshot:
    def test_emits_versioned_bench_json(self, small_anti_3d, tmp_path):
        report = run_http_bench(
            small_anti_3d, sessions=2, concurrency=2, mode="oracle"
        )
        written = write_http_bench_snapshot(
            report,
            str(tmp_path),
            dataset_name=small_anti_3d.name,
            algorithm="uh-random",
        )
        assert written.endswith("BENCH_serve_http.json")
        payload = json.loads(open(written).read())
        assert payload["config"]["mode"] == "oracle"
        assert payload["counters"]["completed"] == 2
        assert payload["counters"]["failed"] == 0
        assert payload["timings"]["p50_ms"] >= 0
