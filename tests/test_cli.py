"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _resolve_dataset, build_parser, main
from repro.errors import ReproError


class TestResolveDataset:
    def test_synthetic_spec(self):
        ds = _resolve_dataset("anti:500:3")
        assert ds.dimension == 3

    def test_bad_synthetic_spec(self):
        with pytest.raises(ReproError):
            _resolve_dataset("anti:500")

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            _resolve_dataset("no-such-dataset")

    def test_csv_path(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\n1,2\n3,1\n2,3\n")
        ds = _resolve_dataset(str(path))
        assert ds.dimension == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_parses(self):
        args = build_parser().parse_args(["info", "car"])
        assert args.dataset == "car"

    def test_train_defaults(self):
        args = build_parser().parse_args(
            ["train", "--dataset", "car", "--out", "x.npz"]
        )
        assert args.algorithm == "EA"
        assert args.epsilon == pytest.approx(0.1)


class TestCommands:
    def test_info_prints_summary(self, capsys):
        code = main(["info", "anti:400:3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "points:" in out
        assert "skyline:" in out

    def test_info_unknown_dataset_error_code(self, capsys):
        code = main(["info", "bogus"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_train_and_search(self, tmp_path, capsys):
        out_path = tmp_path / "agent.npz"
        code = main(
            [
                "train",
                "--dataset", "anti:400:3",
                "--episodes", "3",
                "--updates", "1",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        assert out_path.exists()
        code = main(["search", str(out_path), "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended:" in out

    def test_compare_prints_table(self, capsys):
        code = main(
            [
                "compare",
                "--dataset", "anti:400:3",
                "--epsilon", "0.2",
                "--methods", "UH-Random", "SinglePass",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "UH-Random" in out
        assert "SinglePass" in out


class TestTrainAA:
    def test_train_aa_and_reload(self, tmp_path, capsys):
        out_path = tmp_path / "aa_agent.npz"
        code = main(
            [
                "train",
                "--algorithm", "AA",
                "--dataset", "anti:300:3",
                "--episodes", "2",
                "--updates", "1",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        from repro.rl.serialization import load_agent
        from repro.core.aa import AAAgent

        agent = load_agent(out_path)
        assert isinstance(agent, AAAgent)


class TestProfileCommand:
    def test_profile_writes_trace_and_snapshot(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        aggregate_path = tmp_path / "agg.json"
        code = main(
            [
                "profile",
                "--dataset", "anti:250:3",
                "--sessions", "2",
                "--episodes", "1",
                "--out", str(trace_path),
                "--aggregate", str(aggregate_path),
                "--snapshot", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chrome trace written to" in out
        assert "phase breakdown (traced):" in out
        trace = json.loads(trace_path.read_text())
        names = {event["name"] for event in trace["traceEvents"]}
        assert "engine.wave" in names
        assert any(name.startswith("lp.solve/") for name in names)
        assert any(name.startswith("range.") for name in names)
        aggregate = json.loads(aggregate_path.read_text())
        assert aggregate["spans_recorded"] > 0
        snapshot = json.loads((tmp_path / "BENCH_profile.json").read_text())
        assert snapshot["schema_version"] == 1
        assert snapshot["obs"]["spans"]


class TestServeBenchSnapshot:
    def test_snapshot_flag_writes_bench_file(self, tmp_path, capsys):
        import json

        code = main(
            [
                "serve-bench",
                "--dataset", "anti:250:3",
                "--sessions", "2",
                "--algorithm", "EA",
                "--episodes", "1",
                "--snapshot", str(tmp_path),
            ]
        )
        assert code == 0
        assert "snapshot written to" in capsys.readouterr().out
        snapshot = json.loads(
            (tmp_path / "BENCH_serve_bench.json").read_text()
        )
        assert snapshot["counters"]["rounds_total"] > 0
        assert snapshot["config"]["sessions"] == 2
        # No tracer installed: the obs section is empty, by design.
        assert snapshot["obs"] == {}


class TestRobustnessCommand:
    def test_matrix_prints_and_writes_snapshot(self, tmp_path, capsys):
        import json

        code = main(
            [
                "robustness",
                "--dataset", "anti:250:3",
                "--families", "uh-random",
                "--user-models", "oracle", "abstaining",
                "--seeds", "2",
                "--max-rounds", "40",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "robustness matrix" in out
        assert "snapshot written to" in out
        snapshot = json.loads(
            (tmp_path / "BENCH_robustness.json").read_text()
        )
        assert snapshot["name"] == "robustness"
        assert snapshot["counters"]["total.rounds"] > 0
        assert snapshot["counters"]["uh-random.abstaining.abstentions"] >= 0

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["robustness", "--dataset", "car"]
        )
        assert args.handler.__name__ == "_cmd_robustness"
        assert args.seeds == 4
        assert "oracle" in args.user_models
        assert args.families == ["uh-random", "uh-simplex"]

    def test_serve_bench_accepts_user_model(self):
        args = build_parser().parse_args(
            ["serve-bench", "--dataset", "car", "--user-model", "drifting"]
        )
        assert args.user_model == "drifting"


class TestServeBenchHttp:
    def test_http_flag_runs_loadgen_and_writes_snapshot(
        self, tmp_path, capsys
    ):
        import json

        code = main(
            [
                "serve-bench",
                "--dataset", "anti:250:3",
                "--http",
                "--sessions", "4",
                "--concurrency", "4",
                "--mode", "oracle",
                "--snapshot", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4/4 sessions completed, 0 failed" in out
        assert "latency: p50" in out
        snapshot = json.loads(
            (tmp_path / "BENCH_serve_http.json").read_text()
        )
        assert snapshot["counters"]["completed"] == 4
        assert snapshot["counters"]["failed"] == 0
        assert snapshot["config"]["mode"] == "oracle"

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["serve-bench", "--dataset", "car", "--http"]
        )
        assert args.http is True
        assert args.mode == "interactive"
        assert args.family == "uh-random"
        assert args.host is None and args.port is None


class TestServerParser:
    def test_server_parses(self):
        args = build_parser().parse_args(
            [
                "server",
                "--dataset", "anti:500:3",
                "--port", "9000",
                "--store", "runs/",
                "--agent", "a.npz",
                "--agent", "b.npz",
            ]
        )
        assert args.port == 9000
        assert args.store == "runs/"
        assert args.agent == ["a.npz", "b.npz"]
        assert args.handler.__name__ == "_cmd_server"
