"""Execute the doctest examples embedded in module docstrings.

Docstring examples are documentation that must not rot; this test runs
them for every module that carries any.
"""

from __future__ import annotations

import doctest

import pytest

import repro.data.io
import repro.eval.reporting
import repro.geometry.sampling
import repro.geometry.simplex
import repro.geometry.vectors
import repro.utils.rng
import repro.utils.timing

MODULES_WITH_DOCTESTS = [
    repro.geometry.simplex,
    repro.geometry.vectors,
    repro.geometry.sampling,
    repro.eval.reporting,
    repro.utils.rng,
    repro.utils.timing,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        extraglobs={"np": __import__("numpy")},
    )
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests"
