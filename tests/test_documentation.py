"""Documentation hygiene: every public item carries a docstring.

The deliverable requires doc comments on every public item; this test
walks the package and enforces it, so future additions cannot silently
ship undocumented API.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

PACKAGE_ROOT = Path(repro.__file__).parent


def _iter_modules():
    for info in pkgutil.walk_packages([str(PACKAGE_ROOT)], prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented: list[str] = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their source
        if not inspect.getdoc(item):
            undocumented.append(name)
        if inspect.isclass(item):
            for member_name, member in vars(item).items():
                if member_name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not inspect.getdoc(member):
                    undocumented.append(f"{name}.{member_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )


def test_repo_level_documents_exist():
    repo = PACKAGE_ROOT.parent.parent
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = repo / name
        assert path.exists(), f"missing {name}"
        assert path.stat().st_size > 1_000, f"{name} looks like a stub"
