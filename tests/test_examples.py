"""Sanity checks for the example scripts.

Examples are exercised end-to-end by humans (and by the benchmark data
they share code with); here we verify that every script parses, imports
only public API, and exposes a ``main`` entry point.  The cheapest
example additionally runs end-to-end.
"""

from __future__ import annotations

import ast
import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {script.name for script in SCRIPTS}
        assert {
            "quickstart.py",
            "car_shopping.py",
            "nba_scouting.py",
            "noisy_user.py",
            "interactive_cli.py",
        } <= names

    @pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
    def test_parses_and_has_main(self, script):
        tree = ast.parse(script.read_text())
        functions = {
            node.name
            for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions, f"{script.name} lacks a main()"

    @pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
    def test_guarded_entry_point(self, script):
        assert 'if __name__ == "__main__":' in script.read_text()

    @pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
    def test_imports_resolve(self, script):
        """Importing the module must not execute main() (guard works)."""
        module = _load(script)
        assert hasattr(module, "main")

    def test_docstrings_explain_how_to_run(self):
        for script in SCRIPTS:
            tree = ast.parse(script.read_text())
            doc = ast.get_docstring(tree) or ""
            assert f"examples/{script.name}" in doc, (
                f"{script.name} docstring should show the run command"
            )
