"""The session registry: one construction surface for all families."""

from __future__ import annotations

import pytest

from repro.baselines import (
    AdaptiveSession,
    SinglePassSession,
    UHRandomSession,
    UHSimplexSession,
    UtilityApproxSession,
)
from repro.core import AAConfig, AASession, EAConfig, EASession, train_aa, train_ea
from repro.errors import ConfigurationError
from repro.registry import (
    canonical_session_name,
    make_config,
    make_session,
    make_trainer,
    session_names,
)

BASELINE_TYPES = {
    "uh-random": UHRandomSession,
    "uh-simplex": UHSimplexSession,
    "single-pass": SinglePassSession,
    "utility-approx": UtilityApproxSession,
    "adaptive": AdaptiveSession,
}


class TestNames:
    def test_all_families_registered(self):
        assert set(session_names()) == {
            "ea", "aa", "uh-random", "uh-simplex",
            "single-pass", "utility-approx", "adaptive",
        }

    @pytest.mark.parametrize(
        ("alias", "expected"),
        [
            ("EA", "ea"),
            ("AA", "aa"),
            ("UH-Random", "uh-random"),
            ("UH-Simplex", "uh-simplex"),
            ("SinglePass", "single-pass"),
            ("UtilityApprox", "utility-approx"),
            ("uh_random", "uh-random"),
            ("single pass", "single-pass"),
            ("adaptive", "adaptive"),
        ],
    )
    def test_display_aliases(self, alias, expected):
        assert canonical_session_name(alias) == expected

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown session"):
            canonical_session_name("gradient-descent")


class TestMakeSession:
    @pytest.mark.parametrize("name", sorted(BASELINE_TYPES))
    def test_builds_baselines(self, name, small_anti_3d):
        session = make_session(name, small_anti_3d, 0.1, rng=7)
        assert isinstance(session, BASELINE_TYPES[name])
        assert not session.finished or name == "utility-approx"

    def test_builds_rl_sessions(self, trained_ea_3d, trained_aa_3d, small_anti_3d):
        ea = make_session("ea", small_anti_3d, 0.2, rng=1, agent=trained_ea_3d)
        aa = make_session("AA", small_anti_3d, 0.2, rng=1, agent=trained_aa_3d)
        assert isinstance(ea, EASession)
        assert isinstance(aa, AASession)

    def test_rl_without_agent_raises(self, small_anti_3d):
        with pytest.raises(ConfigurationError, match="agent"):
            make_session("ea", small_anti_3d, 0.1, rng=0)

    def test_agent_dataset_mismatch_raises(self, trained_ea_3d, small_anti_4d):
        with pytest.raises(ConfigurationError, match="does not match"):
            make_session("ea", small_anti_4d, 0.1, rng=0, agent=trained_ea_3d)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.3, 1.5])
    def test_invalid_epsilon_raises(self, epsilon, small_anti_3d):
        with pytest.raises(ConfigurationError, match="epsilon"):
            make_session("uh-random", small_anti_3d, epsilon, rng=0)


class TestTrainerAndConfig:
    def test_trainers(self):
        assert make_trainer("EA") is train_ea
        assert make_trainer("aa") is train_aa

    def test_baseline_has_no_trainer(self):
        with pytest.raises(ConfigurationError, match="needs no training"):
            make_trainer("uh-random")

    def test_configs(self):
        assert make_config("ea", epsilon=0.05) == EAConfig(epsilon=0.05)
        assert make_config("AA") == AAConfig()

    def test_baseline_has_no_config(self):
        with pytest.raises(ConfigurationError, match="no trainer config"):
            make_config("single-pass")
