"""Tests for the user-model zoo and its registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.session import Question, ask_user
from repro.errors import ConfigurationError, PersistenceError
from repro.users import (
    AbstainingUser,
    DriftingUser,
    FatigueUser,
    OracleUser,
    PersonaUser,
    canonical_user_model,
    capture_user_state,
    make_user,
    restore_user_state,
    user_model_names,
)

LEFT = np.array([1.0, 0.0])
RIGHT = np.array([0.0, 1.0])


def question() -> Question:
    return Question(index_i=0, index_j=1, p_i=LEFT, p_j=RIGHT)


class TestPersonaUser:
    def test_unanimous_personas_answer_like_an_oracle(self):
        personas = np.array([[0.9, 0.1], [0.8, 0.2], [0.7, 0.3]])
        user = PersonaUser(personas, rng=0)
        for _ in range(10):
            assert user.prefers(LEFT, RIGHT)
        assert user.questions_asked == 10

    def test_split_personas_give_inconsistent_answers(self):
        personas = np.array([[0.9, 0.1], [0.1, 0.9]])
        user = PersonaUser(personas, rng=0)
        answers = {user.prefers(LEFT, RIGHT) for _ in range(50)}
        assert answers == {True, False}

    def test_utility_is_the_weighted_mixture(self):
        personas = np.array([[1.0, 0.0], [0.0, 1.0]])
        user = PersonaUser(personas, weights=np.array([0.25, 0.75]), rng=0)
        np.testing.assert_allclose(user.utility, [0.25, 0.75])

    def test_rejects_off_simplex_persona(self):
        with pytest.raises(ValueError):
            PersonaUser(np.array([[0.9, 0.9]]))

    def test_rejects_bad_weights(self):
        personas = np.array([[0.9, 0.1], [0.1, 0.9]])
        with pytest.raises(ValueError):
            PersonaUser(personas, weights=np.array([0.9, 0.9]))

    def test_seeded_streams_reproduce(self):
        personas = np.array([[0.9, 0.1], [0.1, 0.9]])
        a = PersonaUser(personas, rng=7)
        b = PersonaUser(personas, rng=7)
        for _ in range(25):
            assert a.prefers(LEFT, RIGHT) == b.prefers(LEFT, RIGHT)


class TestFatigueUser:
    def test_first_answer_is_always_truthful(self):
        for seed in range(10):
            user = FatigueUser(
                np.array([0.9, 0.1]), fatigue_rate=0.5, rng=seed
            )
            assert user.prefers(LEFT, RIGHT)

    def test_errors_accumulate_with_fatigue(self):
        user = FatigueUser(
            np.array([0.9, 0.1]), fatigue_rate=0.1, max_error=0.4, rng=3
        )
        for _ in range(200):
            user.prefers(LEFT, RIGHT)
        assert user.mistakes_made > 0

    def test_zero_rate_never_errs(self):
        user = FatigueUser(np.array([0.9, 0.1]), fatigue_rate=0.0, rng=3)
        for _ in range(100):
            assert user.prefers(LEFT, RIGHT)
        assert user.mistakes_made == 0

    def test_rejects_half_or_more_max_error(self):
        with pytest.raises(ValueError):
            FatigueUser(np.array([0.9, 0.1]), max_error=0.5)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            FatigueUser(np.array([0.9, 0.1]), fatigue_rate=-0.1)


class TestDriftingUser:
    def test_zero_drift_is_an_oracle(self):
        user = DriftingUser(np.array([0.9, 0.1]), drift=0.0, rng=5)
        for _ in range(20):
            assert user.prefers(LEFT, RIGHT)
        np.testing.assert_allclose(user.utility, [0.9, 0.1])

    def test_utility_stays_on_simplex_while_drifting(self):
        user = DriftingUser(np.array([0.5, 0.3, 0.2]), drift=0.2, rng=5)
        p = np.array([1.0, 0.0, 0.0])
        q = np.array([0.0, 1.0, 0.0])
        for _ in range(50):
            user.prefers(p, q)
            u = user.utility
            assert np.all(u >= -1e-12)
            assert float(u.sum()) == pytest.approx(1.0)

    def test_initial_utility_is_preserved(self):
        user = DriftingUser(np.array([0.9, 0.1]), drift=0.3, rng=5)
        for _ in range(20):
            user.prefers(LEFT, RIGHT)
        np.testing.assert_allclose(user.initial_utility, [0.9, 0.1])
        assert not np.allclose(user.utility, user.initial_utility)


class TestAbstainingUser:
    def test_abstains_inside_the_margin(self):
        user = AbstainingUser(np.array([0.5, 0.5]), margin=0.1)
        assert user.compare(np.array([0.5, 0.5]), np.array([0.51, 0.49])) is None
        assert user.abstentions == 1

    def test_decides_outside_the_margin(self):
        user = AbstainingUser(np.array([0.9, 0.1]), margin=0.05)
        assert user.compare(LEFT, RIGHT) is True
        assert user.compare(RIGHT, LEFT) is False
        assert user.abstentions == 0

    def test_prefers_still_forces_a_choice(self):
        user = AbstainingUser(np.array([0.5, 0.5]), margin=1.0)
        assert user.prefers(LEFT, RIGHT)


class TestAskUser:
    def test_plain_user_gets_one_prefers_call(self):
        user = OracleUser(np.array([0.9, 0.1]))
        answer, abstained = ask_user(user, question())
        assert answer is True
        assert abstained == 0
        assert user.questions_asked == 1

    def test_abstainer_is_reasked_then_forced(self):
        user = AbstainingUser(np.array([0.5, 0.5]), margin=1.0)
        answer, abstained = ask_user(user, question(), max_reasks=2)
        assert answer is True  # forced truthful tie-break
        assert abstained == 3  # 1 + max_reasks abstentions
        # 3 compare calls + 1 forced prefers call
        assert user.questions_asked == 4

    def test_decisive_compare_answers_immediately(self):
        user = AbstainingUser(np.array([0.9, 0.1]), margin=0.01)
        answer, abstained = ask_user(user, question())
        assert answer is True
        assert abstained == 0
        assert user.questions_asked == 1


class TestRegistry:
    def test_all_models_registered(self):
        names = user_model_names()
        for expected in (
            "oracle",
            "noisy",
            "persona",
            "fatigue",
            "drifting",
            "abstaining",
        ):
            assert expected in names

    def test_canonical_normalises_case(self):
        assert canonical_user_model("  Oracle ") == "oracle"

    def test_unknown_model_lists_known_ones(self):
        with pytest.raises(ConfigurationError, match="oracle"):
            canonical_user_model("telepathic")

    @pytest.mark.parametrize("model", ["oracle", "abstaining"])
    def test_rng_free_models_never_draw(self, model):
        user = make_user(model, np.array([0.6, 0.4]))
        assert user.prefers(LEFT, RIGHT)

    @pytest.mark.parametrize(
        "model", ["noisy", "persona", "fatigue", "drifting"]
    )
    def test_seeded_models_reproduce(self, model):
        utility = np.array([0.6, 0.4])
        a = make_user(model, utility, rng=11, noise=0.3)
        b = make_user(model, utility, rng=11, noise=0.3)
        for _ in range(30):
            assert a.prefers(LEFT, RIGHT) == b.prefers(LEFT, RIGHT)

    def test_params_pass_through(self):
        user = make_user(
            "abstaining", np.array([0.5, 0.5]), margin=0.5
        )
        assert user.margin == 0.5


class TestStateRoundTrip:
    @pytest.mark.parametrize(
        "model", ["oracle", "noisy", "persona", "fatigue", "drifting", "abstaining"]
    )
    def test_capture_restore_resumes_the_same_stream(self, model):
        utility = np.array([0.55, 0.45])
        rng = np.random.default_rng(99)
        points = rng.dirichlet(np.ones(2), size=(40, 2))
        user = make_user(model, utility, rng=21, noise=0.3)
        twin = make_user(model, utility, rng=22, noise=0.3)
        for p, q in points[:15]:
            user.prefers(p, q)
        restore_user_state(twin, capture_user_state(user))
        for p, q in points[15:]:
            assert user.prefers(p, q) == twin.prefers(p, q)
        assert user.questions_asked == twin.questions_asked

    def test_mismatched_model_is_rejected(self):
        oracle = OracleUser(np.array([0.5, 0.5]))
        drifting = DriftingUser(np.array([0.5, 0.5]), rng=0)
        with pytest.raises(PersistenceError):
            restore_user_state(oracle, capture_user_state(drifting))

    def test_stateless_user_captures_none(self):
        class Minimal:
            def prefers(self, p_i, p_j):
                return True

        assert capture_user_state(Minimal()) is None
        restore_user_state(Minimal(), None)  # no-op

    def test_stateless_user_cannot_restore_state(self):
        class Minimal:
            def prefers(self, p_i, p_j):
                return True

        with pytest.raises(ConfigurationError):
            restore_user_state(Minimal(), {"model": "OracleUser"})
