"""Property-based tests for the NoisyUser Bradley-Terry error model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.users import NoisyUser


def flip_rate(user: NoisyUser, p: np.ndarray, q: np.ndarray, n: int) -> float:
    wrong = 0
    truthful = float(user.utility @ p) >= float(user.utility @ q)
    for _ in range(n):
        if user.prefers(p, q) != truthful:
            wrong += 1
    return wrong / n


class TestNoisyUserProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_seeded_streams_are_reproducible(self, seed):
        utility = np.array([0.6, 0.4])
        a = NoisyUser(utility, error_rate=0.4, rng=seed)
        b = NoisyUser(utility, error_rate=0.4, rng=seed)
        p, q = np.array([0.55, 0.45]), np.array([0.45, 0.55])
        answers_a = [a.prefers(p, q) for _ in range(30)]
        answers_b = [b.prefers(p, q) for _ in range(30)]
        assert answers_a == answers_b
        assert a.mistakes_made == b.mistakes_made

    @given(
        st.floats(min_value=0.0, max_value=0.9),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=20, deadline=None)
    def test_flip_probability_never_exceeds_error_rate(self, rate, seed):
        """``error_rate * exp(-gap/T) <= error_rate`` for every gap."""
        user = NoisyUser(np.array([0.9, 0.1]), error_rate=rate, rng=seed)
        observed = flip_rate(
            user, np.array([1.0, 0.0]), np.array([0.0, 1.0]), 200
        )
        # 3-sigma slack over 200 Bernoulli trials.
        assert observed <= rate + 3 * np.sqrt(max(rate, 0.01) / 200) + 0.05

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_errors_monotone_in_utility_gap(self, seed):
        """Near-ties are answered less reliably than clear-cut questions."""
        utility = np.array([0.5, 0.5])
        user_near = NoisyUser(
            utility, error_rate=0.9, temperature=0.05, rng=seed
        )
        user_far = NoisyUser(
            utility, error_rate=0.9, temperature=0.05, rng=seed
        )
        near = flip_rate(
            user_near, np.array([0.51, 0.49]), np.array([0.49, 0.51]), 300
        )
        far = flip_rate(
            user_far, np.array([1.0, 0.0]), np.array([0.0, 0.0]), 300
        )
        assert near >= far

    def test_zero_gap_flips_at_the_full_error_rate(self):
        user = NoisyUser(np.array([0.5, 0.5]), error_rate=0.5, rng=0)
        rate = flip_rate(
            user, np.array([0.4, 0.6]), np.array([0.6, 0.4]), 2000
        )
        assert rate == pytest.approx(0.5, abs=0.05)


class TestNoisyUserValidation:
    def test_error_rate_one_is_rejected(self):
        """Regression: 1.0 used to pass the inclusive probability check,
        while serve-bench rejects noise >= 1 — the validations now agree."""
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            NoisyUser(np.array([0.5, 0.5]), error_rate=1.0)

    def test_error_rate_above_one_is_rejected(self):
        with pytest.raises(ValueError):
            NoisyUser(np.array([0.5, 0.5]), error_rate=1.5)

    def test_boundary_just_below_one_is_accepted(self):
        NoisyUser(np.array([0.5, 0.5]), error_rate=0.999)

    def test_non_positive_temperature_is_rejected(self):
        with pytest.raises(ValueError):
            NoisyUser(np.array([0.5, 0.5]), temperature=0.0)
