"""Tests for simulated users."""

from __future__ import annotations

import numpy as np
import pytest

from repro.users import NoisyUser, OracleUser


class TestOracleUser:
    def test_answers_follow_utility(self):
        user = OracleUser(np.array([0.9, 0.1]))
        assert user.prefers(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        assert not user.prefers(np.array([0.0, 1.0]), np.array([1.0, 0.0]))

    def test_tie_prefers_first(self):
        user = OracleUser(np.array([0.5, 0.5]))
        assert user.prefers(np.array([0.4, 0.6]), np.array([0.6, 0.4]))

    def test_counts_questions(self):
        user = OracleUser(np.array([0.5, 0.5]))
        user.prefers(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        user.prefers(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        assert user.questions_asked == 2

    def test_rejects_off_simplex_utility(self):
        with pytest.raises(ValueError):
            OracleUser(np.array([0.9, 0.9]))

    def test_rejects_negative_utility(self):
        with pytest.raises(ValueError):
            OracleUser(np.array([-0.1, 1.1]))

    def test_utility_is_copied(self):
        u = np.array([0.4, 0.6])
        user = OracleUser(u)
        view = user.utility
        view[0] = 99.0
        assert user.utility[0] == pytest.approx(0.4)

    def test_dimension(self):
        assert OracleUser(np.array([0.2, 0.3, 0.5])).dimension == 3


class TestNoisyUser:
    def test_zero_error_rate_is_truthful(self):
        user = NoisyUser(np.array([0.9, 0.1]), error_rate=0.0, rng=0)
        for _ in range(20):
            assert user.prefers(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        assert user.mistakes_made == 0

    def test_near_ties_flip_sometimes(self):
        user = NoisyUser(
            np.array([0.5, 0.5]), error_rate=0.5, temperature=10.0, rng=0
        )
        answers = [
            user.prefers(np.array([0.51, 0.5]), np.array([0.5, 0.51]))
            for _ in range(200)
        ]
        assert user.mistakes_made > 0
        assert any(answers) and not all(answers)

    def test_clear_cut_rarely_flips(self):
        user = NoisyUser(
            np.array([0.9, 0.1]), error_rate=0.5, temperature=0.01, rng=0
        )
        for _ in range(100):
            user.prefers(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        # Gap is huge relative to temperature: flip probability ~ 0.
        assert user.mistakes_made == 0

    def test_invalid_error_rate(self):
        with pytest.raises(ValueError):
            NoisyUser(np.array([0.5, 0.5]), error_rate=1.5)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            NoisyUser(np.array([0.5, 0.5]), temperature=0.0)

    def test_deterministic_with_seed(self):
        answers = []
        for _ in range(2):
            user = NoisyUser(np.array([0.5, 0.5]), error_rate=0.5, rng=3)
            answers.append(
                [
                    user.prefers(np.array([0.52, 0.5]), np.array([0.5, 0.52]))
                    for _ in range(20)
                ]
            )
        assert answers[0] == answers[1]
