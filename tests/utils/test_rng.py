"""Tests for RNG plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_passes_through_generator(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_int_seed_deterministic(self):
        assert ensure_rng(7).uniform() == ensure_rng(7).uniform()

    def test_none_gives_fresh_entropy(self):
        # Two fresh generators almost surely differ.
        assert ensure_rng(None).uniform() != ensure_rng(None).uniform()

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        gen = ensure_rng(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_streams_differ(self):
        a, b = spawn_rngs(0, 2)
        assert a.uniform() != b.uniform()

    def test_deterministic(self):
        first = [g.uniform() for g in spawn_rngs(9, 3)]
        second = [g.uniform() for g in spawn_rngs(9, 3)]
        assert first == second

    def test_from_generator(self):
        gen = np.random.default_rng(1)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2
        assert children[0].uniform() != children[1].uniform()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []
