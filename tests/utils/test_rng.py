"""Tests for RNG plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, get_state, set_state, spawn_rngs


class TestEnsureRng:
    def test_passes_through_generator(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_int_seed_deterministic(self):
        assert ensure_rng(7).uniform() == ensure_rng(7).uniform()

    def test_none_gives_fresh_entropy(self):
        # Two fresh generators almost surely differ.
        assert ensure_rng(None).uniform() != ensure_rng(None).uniform()

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        gen = ensure_rng(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_streams_differ(self):
        a, b = spawn_rngs(0, 2)
        assert a.uniform() != b.uniform()

    def test_deterministic(self):
        first = [g.uniform() for g in spawn_rngs(9, 3)]
        second = [g.uniform() for g in spawn_rngs(9, 3)]
        assert first == second

    def test_from_generator(self):
        gen = np.random.default_rng(1)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2
        assert children[0].uniform() != children[1].uniform()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []


class TestStateRoundTrip:
    def test_restore_replays_the_stream(self):
        gen = ensure_rng(7)
        state = get_state(gen)
        first = gen.uniform(size=16)
        set_state(gen, state)
        np.testing.assert_array_equal(gen.uniform(size=16), first)

    def test_state_is_a_deep_copy(self):
        gen = ensure_rng(3)
        state = get_state(gen)
        before = dict(state)
        gen.uniform(size=100)  # advancing must not mutate the copy
        assert state == before

    def test_set_state_copies_on_the_way_in(self):
        gen = ensure_rng(5)
        state = get_state(gen)
        set_state(gen, state)
        gen.uniform(size=10)
        # The caller's dict still restores the original position.
        replay = set_state(ensure_rng(0), state)
        original = set_state(ensure_rng(1), state)
        np.testing.assert_array_equal(
            replay.uniform(size=8), original.uniform(size=8)
        )

    def test_state_survives_json(self):
        import json

        gen = ensure_rng(11)
        state = json.loads(json.dumps(get_state(gen)))
        restored = set_state(ensure_rng(0), state)
        np.testing.assert_array_equal(
            restored.uniform(size=8), ensure_rng(11).uniform(size=8)
        )

    def test_returns_the_generator(self):
        gen = ensure_rng(2)
        assert set_state(gen, get_state(gen)) is gen
