"""Tests for the pausable stopwatch."""

from __future__ import annotations

import time

from repro.utils.timing import Stopwatch


class TestStopwatch:
    def test_starts_at_zero(self):
        assert Stopwatch().elapsed == 0.0

    def test_accumulates_while_running(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.01)
        watch.stop()
        assert watch.elapsed >= 0.005

    def test_pause_excludes_time(self):
        watch = Stopwatch()
        watch.start()
        watch.stop()
        elapsed = watch.elapsed
        time.sleep(0.02)
        assert watch.elapsed == elapsed

    def test_resume_adds_more(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.005)
        watch.stop()
        first = watch.elapsed
        watch.start()
        time.sleep(0.005)
        watch.stop()
        assert watch.elapsed > first

    def test_start_idempotent(self):
        watch = Stopwatch()
        watch.start()
        watch.start()
        watch.stop()
        assert watch.elapsed >= 0.0

    def test_stop_idempotent(self):
        watch = Stopwatch()
        watch.stop()
        assert watch.elapsed == 0.0

    def test_reset(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.005)
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_running_flag(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        assert not watch.running

    def test_context_manager(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.005)
        assert not watch.running
        assert watch.elapsed >= 0.003

    def test_elapsed_during_run(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.005)
        assert watch.elapsed > 0.0
        watch.stop()
