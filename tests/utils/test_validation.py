"""Tests for validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    require,
    require_matrix,
    require_positive,
    require_probability,
    require_vector,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive(0.1, "x")

    @pytest.mark.parametrize("value", [0.0, -1.0])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            require_positive(value, "x")


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        require_probability(value, "p")

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            require_probability(value, "p")


class TestRequireVector:
    def test_coerces_list(self):
        out = require_vector([1, 2, 3], "v")
        assert out.dtype == float
        assert out.shape == (3,)

    def test_checks_size(self):
        with pytest.raises(ValueError, match="length 2"):
            require_vector(np.zeros(3), "v", size=2)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            require_vector(np.zeros((2, 2)), "v")


class TestRequireMatrix:
    def test_coerces_nested_list(self):
        out = require_matrix([[1, 2], [3, 4]], "m")
        assert out.shape == (2, 2)

    def test_checks_columns(self):
        with pytest.raises(ValueError, match="columns"):
            require_matrix(np.zeros((2, 3)), "m", columns=2)

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            require_matrix(np.zeros(3), "m")
